"""Chaos campaigns: randomized fault injection with checked invariants.

A campaign stands up a full VDCE deployment, starts the monitoring
control plane, arms scripted and stochastic fault injectors (host
crashes, WAN link outages, a mid-campaign partition, optionally a
whole-site outage, control-message loss), submits a stream of
applications, and then audits the run against four invariants:

I1 — *typed completion*: every application either completes or fails
     with a typed error (:class:`~repro.runtime.execution.ExecutionError`,
     :class:`~repro.scheduler.site_scheduler.SchedulingError`,
     :class:`~repro.net.rpc.RpcTimeout`,
     :class:`~repro.sim.host.HostDownError`).  Untyped exceptions and
     applications that never settle are violations.
I2 — *no believed-down placement*: no successful task attempt starts on
     a host while the failure detector believes that host is down.
I3 — *determinism*: a campaign is a pure function of its config — the
     same seed yields byte-identical trace and metrics hashes (checked
     by running the campaign twice; see ``repro chaos``).
I4 — *reconciliation*: the injection log (ground truth) and the
     detection log (what the Group Managers reported) agree — every
     false positive is accounted for, and every sufficiently long real
     outage is detected within the echo-protocol's detection window.
I5 — *resume equivalence*: every completed application's terminal
     output hashes equal the pure-evaluation oracle
     (:func:`~repro.runtime.checkpoint.expected_output_hashes`) — in
     particular an application checkpoint-restarted after its Site
     Manager crashed produces byte-identical outputs.
I6 — *no orphaned group*: at campaign end every Site Manager is
     re-registered, every Group Manager is live (original or deputy),
     and every host is owned by exactly one live Group Manager.
I7 — *speculation safety*: every completed application that resolved at
     least one speculative race with a backup win still reproduces the
     pure-evaluation oracle's terminal output hashes — which copy won
     must be unobservable in the outputs.
I8 — *bounded waste*: at most one backup is ever launched per task
     attempt, every speculative race launched by a completed
     application is resolved (no leaked backups), and no backup is
     launched after its race has already been decided.
I9 — *span integrity* (only audited with ``causal_spans=True``): every
     opened causal span closes exactly once, or is explicitly
     orphan-marked when its application dies or the campaign ends with
     work in flight — the trace never contains a silently leaked,
     double-closed, or never-opened span.
I10 — *bounded admission* (only with ``storm_apps > 0``): the admission
     queue's depth never exceeds its configured bound, and every
     submitted storm application reaches a terminal outcome — admitted
     (completed/failed), rejected, or expired.  Nothing queues forever.
I11 — *breaker silence* (only with ``breakers=True``): while a circuit
     is open, no message is sent on that link — every send either
     precedes the trip or is the half-open probe at window end.
I12 — *no dirty consumption* (only with ``data_integrity=True``): no
     task ever consumes bytes whose content hash mismatches the
     producer's recorded hash — every consumption in the integrity
     ledger is clean, because a mismatch is always caught and repaired
     (or fails typed) before the value reaches a task.
I13 — *repair or typed death* (only with ``data_integrity=True``):
     every corruption/loss incident ends ``refetched`` or
     ``regenerated``, or is ``poisoned`` with the owning application
     terminating in a typed failure — a completed application never
     leaves an incident unresolved, and never completes past a
     poisoned artifact.
I14 — *no placement on a non-ACTIVE host* (only with ``n_churn_hosts
     > 0``): once a host's drain/departure transition is recorded, no
     successful task attempt starts on it until it rejoins and
     reactivates — attempts already running at drain time may finish,
     which is the entire point of a graceful drain.
I15 — *drain loses no work*: every task evicted or invalidated by a
     membership transition either completes on another (ACTIVE) host
     or its application dies with a typed error — nothing is silently
     dropped on the federation floor.
I16 — *rejoin convergence*: a host that departed and rejoined ends the
     campaign ACTIVE and re-scorable — present in its repository's
     runnable table, so host selection bids it again.

Campaigns can also inject *performance* faults — scripted host
slowdowns and stochastic slow/normal flapping — and enable the
straggler defenses (phi-accrual detection, speculative re-execution,
host-health quarantine) they exist to stress.  All of it defaults off,
so existing configs hash identically.

Everything is deterministic: victims are drawn from the named stream
``chaos:plan``, fault processes from their per-target streams, and the
report's :meth:`~ChaosReport.campaign_hash` is a content hash of the
whole outcome — the regression oracle the CLI and CI lean on.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.failures import FailureInjector
from repro.sim.host import HostDownError
from repro.sim.kernel import Timeout

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "churn_smoke_config",
    "corruption_smoke_config",
    "run_campaign",
    "slowdown_smoke_config",
    "smoke_config",
    "storm_config",
]

#: worst-case lag between a Group Manager detection and the repository
#: update it triggers (one lossless LAN notify), plus scheduling slack
_REPORT_DELIVERY_SLACK_S = 0.5

#: the corruption/integrity knobs and their defaults — a config where
#: every one matches is serialised without them (see ChaosReport.to_dict)
_CORRUPTION_DEFAULTS = {
    "data_integrity": False,
    "integrity_max_refetches": 2,
    "integrity_max_regenerations": 2,
    "n_corrupt_links": 0,
    "link_corrupt_prob": 0.0,
    "link_truncate_prob": 0.0,
    "corruption_at_s": 10.0,
    "corruption_duration_s": None,
    "artifact_loss_at_s": None,
    "journal_corrupt_at_s": None,
}

#: the membership-churn knobs and their defaults — same omission rule,
#: so presets that never churn keep their committed campaign hashes
_CHURN_DEFAULTS = {
    "n_churn_hosts": 0,
    "churn_start_s": 30.0,
    "churn_window_s": 60.0,
    "churn_drain_deadline_s": 8.0,
    "churn_rejoin_after_s": None,
}


@dataclass(frozen=True)
class ChaosConfig:
    """Everything a campaign depends on — hash this, and you hash the run."""

    seed: int = 0
    n_sites: int = 3
    hosts_per_site: int = 4
    n_apps: int = 4
    #: nominal campaign length; apps may run past it, faults keep going
    duration_s: float = 300.0
    first_submit_s: float = 5.0
    app_spacing_s: float = 45.0
    k: int = 2
    # stochastic host faults
    n_flaky_hosts: int = 2
    host_mtbf_s: float = 120.0
    host_mttr_s: float = 30.0
    # stochastic WAN link faults
    n_flaky_links: int = 1
    link_mtbf_s: float = 150.0
    link_mttr_s: float = 20.0
    # scripted WAN partition (first site vs the rest); None disables
    partition_at_s: Optional[float] = 60.0
    partition_duration_s: float = 40.0
    # scripted whole-site outage (last site); None disables
    site_outage_at_s: Optional[float] = None
    site_outage_duration_s: float = 30.0
    # scripted Group Manager crash (victim drawn from chaos:plan);
    # permanent — the group's monitors must elect a deputy.  None disables
    gm_crash_at_s: Optional[float] = None
    # scripted Site Manager crash; the server re-registers after
    # sm_crash_duration_s, and in-flight applications it owned must
    # checkpoint-restart on a surviving site.  None disables
    sm_crash_at_s: Optional[float] = None
    sm_crash_duration_s: float = 45.0
    # control-message quality (WAN message loss; echo loss is LAN-side)
    message_loss_prob: float = 0.05
    echo_loss_prob: float = 0.05
    suspicion_threshold: int = 2
    echo_period_s: float = 5.0
    # performance faults: scripted slowdowns + stochastic slow/normal
    # flapping (victims drawn from chaos:plan, after all crash victims,
    # so enabling them never perturbs an existing config's fault plan)
    n_slow_hosts: int = 0
    slowdown_at_s: float = 50.0
    slowdown_duration_s: float = 60.0
    slowdown_factor: float = 8.0
    n_flapping_hosts: int = 0
    flap_mean_normal_s: float = 40.0
    flap_mean_slow_s: float = 15.0
    flap_factor: float = 6.0
    # straggler defenses under test (defaults mirror RuntimeConfig: off)
    detector: str = "count"
    speculation: bool = False
    health: bool = False
    # causal span tracing (repro.obs): off by default so existing
    # configs' traces keep their committed shape; on, the I9 span
    # integrity invariant is audited as part of the campaign
    causal_spans: bool = False
    # arrival storm through a bounded admission queue at the first site
    # (0 disables: no queue is built, no extra users are created)
    storm_apps: int = 0
    storm_start_s: float = 10.0
    #: submissions per burst (a burst lands at one instant)
    storm_burst: int = 6
    storm_spacing_s: float = 4.0
    #: distinct storm users, cycled over submissions; user ``stormJ``
    #: has priority ``1 + J % 3``
    storm_users: int = 3
    storm_max_queued: int = 8
    storm_max_concurrent: int = 2
    #: in-queue TTL every storm submission carries (None = no TTL)
    storm_ttl_s: Optional[float] = 45.0
    #: deadline carried by every third storm submission (None disables)
    storm_deadline_s: Optional[float] = None
    #: per-user token-bucket rate limit (None = no rate limiting)
    storm_user_rate_per_s: Optional[float] = None
    storm_user_burst: int = 2
    # overload-protection features under test (defaults mirror
    # RuntimeConfig: off, so existing configs hash identically)
    overload: bool = False
    breakers: bool = False
    # data-plane integrity (DESIGN §16): end-to-end checksums and the
    # refetch → lineage-regeneration → poison repair ladder.  Default
    # mirrors RuntimeConfig: off — and :meth:`ChaosReport.to_dict`
    # omits these keys entirely when every one sits at its default, so
    # existing configs' campaign hashes stay byte-identical
    data_integrity: bool = False
    integrity_max_refetches: int = 2
    integrity_max_regenerations: int = 2
    # corruption faults: armed WAN links flip/truncate payloads with
    # these per-transfer probabilities (victims drawn from chaos:plan
    # after every other victim, so arming never perturbs crash plans)
    n_corrupt_links: int = 0
    link_corrupt_prob: float = 0.0
    link_truncate_prob: float = 0.0
    corruption_at_s: float = 10.0
    corruption_duration_s: Optional[float] = None
    # scripted staged-artifact loss on one host (needs data_integrity —
    # the artifact index is what gets damaged); None disables
    artifact_loss_at_s: Optional[float] = None
    # scripted checkpoint-journal bit-rot on one app's journal (victim
    # app drawn from chaos:plan); None disables
    journal_corrupt_at_s: Optional[float] = None
    # membership churn (DESIGN §17): n_churn_hosts victims (never a
    # group leader or site server) each gracefully drain and depart at
    # a per-host time drawn from their own churn:<name> stream inside
    # [churn_start_s, churn_start_s + churn_window_s).  0 disables:
    # no victims drawn, no extra RNG, campaign hashes unchanged
    n_churn_hosts: int = 0
    churn_start_s: float = 30.0
    churn_window_s: float = 60.0
    #: running attempts get this long to finish before eviction;
    #: None = hard decommission (immediate eviction, no drain grace)
    churn_drain_deadline_s: Optional[float] = 8.0
    #: departed hosts rejoin roughly this long after departing (±25%
    #: jitter from their churn stream); None = they stay gone
    churn_rejoin_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_sites < 1 or self.hosts_per_site < 1:
            raise ValueError("need at least one site with one host")
        if self.n_apps < 1:
            raise ValueError("n_apps must be >= 1")
        if self.duration_s <= 0 or self.app_spacing_s < 0:
            raise ValueError("duration_s must be positive, spacing non-negative")
        if self.n_flaky_hosts < 0 or self.n_flaky_links < 0:
            raise ValueError("victim counts must be non-negative")
        if not (0.0 <= self.message_loss_prob < 1.0):
            raise ValueError("message_loss_prob must be in [0, 1)")
        if not (0.0 <= self.echo_loss_prob < 1.0):
            raise ValueError("echo_loss_prob must be in [0, 1)")
        if self.n_slow_hosts < 0 or self.n_flapping_hosts < 0:
            raise ValueError("performance-fault victim counts must be >= 0")
        if self.n_slow_hosts and (
            self.slowdown_factor <= 1.0 or self.slowdown_duration_s <= 0
        ):
            raise ValueError("slowdown needs factor > 1 and duration > 0")
        if self.n_flapping_hosts and (
            self.flap_factor <= 1.0
            or self.flap_mean_normal_s <= 0
            or self.flap_mean_slow_s <= 0
        ):
            raise ValueError("flapping needs factor > 1 and positive means")
        if self.detector not in ("count", "phi"):
            raise ValueError(f"unknown detector {self.detector!r}")
        if self.storm_apps < 0:
            raise ValueError("storm_apps must be non-negative")
        if self.storm_apps:
            if self.storm_burst < 1 or self.storm_users < 1:
                raise ValueError("storm_burst/storm_users must be >= 1")
            if self.storm_spacing_s < 0:
                raise ValueError("storm_spacing_s must be non-negative")
            if self.storm_max_queued < 1 or self.storm_max_concurrent < 1:
                raise ValueError(
                    "storm_max_queued/storm_max_concurrent must be >= 1"
                )
        if self.n_corrupt_links < 0:
            raise ValueError("n_corrupt_links must be non-negative")
        if not (0.0 <= self.link_corrupt_prob < 1.0):
            raise ValueError("link_corrupt_prob must be in [0, 1)")
        if not (0.0 <= self.link_truncate_prob < 1.0):
            raise ValueError("link_truncate_prob must be in [0, 1)")
        if self.link_corrupt_prob + self.link_truncate_prob >= 1.0:
            raise ValueError("corruption probabilities must sum below 1")
        if self.integrity_max_refetches < 0 or self.integrity_max_regenerations < 0:
            raise ValueError("integrity repair budgets must be non-negative")
        if self.artifact_loss_at_s is not None and not self.data_integrity:
            raise ValueError(
                "artifact_loss_at_s damages the integrity artifact index "
                "— it needs data_integrity=True"
            )
        if self.n_corrupt_links > 0 and not self.data_integrity:
            raise ValueError(
                "n_corrupt_links marks payloads that only the integrity "
                "machinery can detect — it needs data_integrity=True "
                "(silent corruption would make I12/I13 unauditable)"
            )
        if self.n_churn_hosts < 0:
            raise ValueError("n_churn_hosts must be non-negative")
        if self.n_churn_hosts:
            if self.churn_window_s <= 0:
                raise ValueError("churn_window_s must be positive")
            if (self.churn_drain_deadline_s is not None
                    and self.churn_drain_deadline_s <= 0):
                raise ValueError("churn_drain_deadline_s must be positive")
            if (self.churn_rejoin_after_s is not None
                    and self.churn_rejoin_after_s <= 0):
                raise ValueError("churn_rejoin_after_s must be positive")


def smoke_config(seed: int = 0) -> ChaosConfig:
    """The small, fast campaign CI runs on every push."""
    return ChaosConfig(
        seed=seed,
        n_sites=3,
        hosts_per_site=3,
        n_apps=3,
        duration_s=240.0,
        app_spacing_s=35.0,
        n_flaky_hosts=2,
        host_mtbf_s=90.0,
        host_mttr_s=25.0,
        n_flaky_links=1,
        link_mtbf_s=120.0,
        link_mttr_s=15.0,
        partition_at_s=40.0,
        partition_duration_s=30.0,
        gm_crash_at_s=70.0,
        sm_crash_at_s=100.0,
        sm_crash_duration_s=45.0,
        message_loss_prob=0.05,
        echo_loss_prob=0.05,
    )


def slowdown_smoke_config(seed: int = 0) -> ChaosConfig:
    """The straggler-defense campaign CI runs: slowdowns + flapping with
    phi-accrual detection, speculation, and health quarantine enabled."""
    return ChaosConfig(
        seed=seed,
        n_sites=3,
        hosts_per_site=3,
        n_apps=3,
        duration_s=240.0,
        app_spacing_s=35.0,
        n_flaky_hosts=1,
        host_mtbf_s=120.0,
        host_mttr_s=25.0,
        n_flaky_links=0,
        partition_at_s=None,
        message_loss_prob=0.02,
        echo_loss_prob=0.02,
        n_slow_hosts=6,
        slowdown_at_s=20.0,
        slowdown_duration_s=90.0,
        slowdown_factor=8.0,
        n_flapping_hosts=3,
        flap_mean_normal_s=40.0,
        flap_mean_slow_s=15.0,
        flap_factor=6.0,
        detector="phi",
        speculation=True,
        health=True,
    )


def corruption_smoke_config(seed: int = 0) -> ChaosConfig:
    """The data-integrity campaign CI runs: every WAN link flips or
    truncates payloads, one host's staged artifacts vanish mid-run, one
    app's checkpoint journal takes a bit of rot — with end-to-end
    checksums and the refetch/regenerate/poison repair ladder armed.
    A Site Manager crash keeps the checkpoint-resume path in play so
    the journal fault has somewhere to bite."""
    return ChaosConfig(
        seed=seed,
        n_sites=3,
        hosts_per_site=3,
        n_apps=4,
        duration_s=240.0,
        app_spacing_s=35.0,
        n_flaky_hosts=0,
        n_flaky_links=0,
        partition_at_s=None,
        sm_crash_at_s=90.0,
        sm_crash_duration_s=45.0,
        message_loss_prob=0.02,
        echo_loss_prob=0.02,
        data_integrity=True,
        n_corrupt_links=3,
        link_corrupt_prob=0.35,
        link_truncate_prob=0.10,
        corruption_at_s=10.0,
        artifact_loss_at_s=60.0,
        journal_corrupt_at_s=80.0,
    )


def churn_smoke_config(seed: int = 0) -> ChaosConfig:
    """The membership-churn campaign CI runs: every non-leader host
    gracefully drains and departs mid-run (each at its own
    ``churn:<name>``-drawn time inside the window), then rejoins under
    a fresh epoch while applications keep arriving — exercising drain
    eviction (the 2s grace is shorter than a task slice, so resident
    work genuinely gets preempted and rescheduled), epoch-checked
    placement (I14), drain work conservation (I15), and rejoin
    convergence (I16).  Crash/partition faults stay off so every
    reschedule in the campaign is attributable to membership churn."""
    return ChaosConfig(
        seed=seed,
        n_sites=3,
        hosts_per_site=4,
        n_apps=4,
        duration_s=300.0,
        app_spacing_s=40.0,
        n_flaky_hosts=0,
        n_flaky_links=0,
        partition_at_s=None,
        message_loss_prob=0.02,
        echo_loss_prob=0.02,
        n_churn_hosts=9,
        churn_start_s=25.0,
        churn_window_s=70.0,
        churn_drain_deadline_s=2.0,
        churn_rejoin_after_s=50.0,
    )


def storm_config(seed: int = 0) -> ChaosConfig:
    """The overload campaign: an arrival storm against a bounded
    admission queue, with backpressure/brownout and circuit breakers
    armed, plus a WAN partition so the breakers actually trip."""
    return ChaosConfig(
        seed=seed,
        n_sites=2,
        hosts_per_site=2,
        n_apps=2,
        duration_s=180.0,
        first_submit_s=5.0,
        app_spacing_s=30.0,
        n_flaky_hosts=1,
        host_mtbf_s=90.0,
        host_mttr_s=20.0,
        n_flaky_links=0,
        partition_at_s=30.0,
        partition_duration_s=25.0,
        message_loss_prob=0.02,
        echo_loss_prob=0.02,
        storm_apps=18,
        storm_start_s=10.0,
        storm_burst=6,
        storm_spacing_s=4.0,
        storm_users=3,
        storm_max_queued=8,
        storm_max_concurrent=2,
        storm_ttl_s=45.0,
        storm_deadline_s=60.0,
        storm_user_rate_per_s=0.25,
        storm_user_burst=2,
        overload=True,
        breakers=True,
    )


@dataclass
class ChaosReport:
    """What one campaign did, found, and hashed to."""

    config: ChaosConfig
    outcomes: Dict[str, Dict[str, Any]]
    violations: List[str]
    injection_events: int
    detections: int
    false_positives: int
    final_time: float
    trace_hash: str
    metrics_hash: str
    #: ground-truth injection log, serialised for artifacts/reconciliation
    injection_log: List[Dict[str, Any]] = field(default_factory=list)
    # straggler-defense outcome (zero/empty unless the defenses ran)
    speculative_launches: int = 0
    speculative_wins: int = 0
    speculative_wasted_s: float = 0.0
    quarantined_hosts: List[str] = field(default_factory=list)
    # overload-protection outcome (zero/empty unless a storm ran)
    sheds: int = 0
    shed_log: List[Dict[str, Any]] = field(default_factory=list)
    peak_queued: int = 0
    brownout_shifts: int = 0
    breaker_transitions: int = 0
    breaker_fast_fails: int = 0
    #: integrity ledger snapshot (None unless the campaign armed it)
    integrity: Optional[Dict[str, Any]] = None
    #: membership-transition audit (None unless churn was armed)
    membership: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        config = asdict(self.config)
        # a config with every corruption knob at its default serialises
        # exactly as it did before the knobs existed, so the committed
        # campaign hashes of the older presets stay byte-identical
        if all(config[k] == v for k, v in _CORRUPTION_DEFAULTS.items()):
            for key in _CORRUPTION_DEFAULTS:
                del config[key]
        # same rule for the churn knobs: a config that never churns
        # serialises as it did before they existed
        if all(config[k] == v for k, v in _CHURN_DEFAULTS.items()):
            for key in _CHURN_DEFAULTS:
                del config[key]
        document = {
            "config": config,
            "outcomes": {k: self.outcomes[k] for k in sorted(self.outcomes)},
            "violations": list(self.violations),
            "injection_events": self.injection_events,
            "detections": self.detections,
            "false_positives": self.false_positives,
            "final_time": round(self.final_time, 9),
            "trace_hash": self.trace_hash,
            "metrics_hash": self.metrics_hash,
            "injection_log": list(self.injection_log),
            "speculative_launches": self.speculative_launches,
            "speculative_wins": self.speculative_wins,
            "speculative_wasted_s": round(self.speculative_wasted_s, 9),
            "quarantined_hosts": list(self.quarantined_hosts),
            "sheds": self.sheds,
            "shed_log": list(self.shed_log),
            "peak_queued": self.peak_queued,
            "brownout_shifts": self.brownout_shifts,
            "breaker_transitions": self.breaker_transitions,
            "breaker_fast_fails": self.breaker_fast_fails,
            "ok": self.ok,
        }
        if self.integrity is not None:
            document["integrity"] = self.integrity
        if self.membership is not None:
            document["membership"] = self.membership
        return document

    def campaign_hash(self) -> str:
        """Content hash of the whole campaign outcome (I3's oracle)."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _build_apps(config: ChaosConfig):
    """The deterministic application stream: shapes cycle, names unique."""
    from repro.workloads.pipelines import fork_join, linear_pipeline, reduction_tree

    apps = []
    for i in range(config.n_apps):
        shape = i % 3
        if shape == 0:
            afg = linear_pipeline(n_stages=5, cost=6.0, edge_mb=4.0)
        elif shape == 1:
            afg = fork_join(width=3, branch_cost=8.0, edge_mb=2.0)
        else:
            afg = reduction_tree(leaves=4, leaf_cost=7.0, edge_mb=2.0)
        afg.name = f"chaos{i:02d}-{afg.name}"
        apps.append(afg)
    return apps


def run_campaign(
    config: ChaosConfig, trace_path: Optional[str] = None
) -> ChaosReport:
    """Run one chaos campaign and audit it; never raises on faults —
    fault-tolerance failures surface as :attr:`ChaosReport.violations`.

    ``trace_path`` writes the campaign's full event trace (JSONL) for
    offline analysis — with ``causal_spans`` on, ``repro explain`` can
    attribute each application's time from that file.
    """
    # imported here: repro.sim must not depend on the upper layers at
    # import time (the facade imports back down into repro.sim)
    from repro.core.vdce import VDCE
    from repro.metrics.registry import MetricsRegistry
    from repro.runtime.checkpoint import (
        ApplicationCheckpoint,
        CheckpointJournal,
        expected_output_hashes,
        final_output_hashes,
    )
    from repro.runtime.admission import (
        AdmissionExpired,
        AdmissionPolicy,
        AdmissionQueue,
        AdmissionRejected,
    )
    from repro.errors import DataIntegrityError, JournalCorruptError
    from repro.runtime.execution import ExecutionCoordinator, ExecutionError
    from repro.runtime.integrity import IntegrityPolicy
    from repro.runtime.overload import OverloadPolicy
    from repro.runtime.straggler import HealthPolicy, SpeculationPolicy
    from repro.runtime.vdce_runtime import RuntimeConfig
    from repro.net.rpc import BreakerPolicy, ManagerUnavailable, RpcTimeout
    from repro.repository.users import AccessDomain
    from repro.scheduler.site_scheduler import SchedulingError, SiteScheduler
    from repro.trace.tracer import Tracer

    typed_errors = (
        ExecutionError, SchedulingError, RpcTimeout, ManagerUnavailable,
        HostDownError, DataIntegrityError, JournalCorruptError,
    )

    tracer = Tracer()
    vdce = VDCE.standard(
        n_sites=config.n_sites,
        hosts_per_site=config.hosts_per_site,
        seed=config.seed,
        runtime_config=RuntimeConfig(
            echo_loss_prob=config.echo_loss_prob,
            suspicion_threshold=config.suspicion_threshold,
            echo_period_s=config.echo_period_s,
            detector=config.detector,
            speculation=SpeculationPolicy() if config.speculation else None,
            health=HealthPolicy() if config.health else None,
            causal_spans=config.causal_spans,
            overload=OverloadPolicy() if config.overload else None,
            breaker=BreakerPolicy() if config.breakers else None,
            data_integrity=(
                IntegrityPolicy(
                    max_refetches=config.integrity_max_refetches,
                    max_regenerations=config.integrity_max_regenerations,
                )
                if config.data_integrity else None
            ),
        ),
        tracer=tracer,
        metrics=MetricsRegistry(),
    )
    sim = vdce.sim
    runtime = vdce.runtime
    network = vdce.topology.network
    sites = vdce.sites
    vdce.start_monitoring()
    if config.message_loss_prob > 0 and config.n_sites > 1:
        network.set_message_loss(config.message_loss_prob)

    # -- arm the injectors -------------------------------------------------
    injector = FailureInjector(sim)
    plan_rng = sim.rng("chaos:plan")
    all_hosts = sorted(vdce.topology.all_hosts, key=lambda h: h.name)
    n_hosts = min(config.n_flaky_hosts, len(all_hosts))
    if n_hosts:
        picks = sorted(plan_rng.choice(len(all_hosts), size=n_hosts, replace=False))
        for i in picks:
            injector.start_random(
                all_hosts[int(i)], config.host_mtbf_s, config.host_mttr_s
            )
    site_pairs = [
        (a, b) for i, a in enumerate(sites) for b in sites[i + 1:]
    ]
    n_links = min(config.n_flaky_links, len(site_pairs))
    if n_links:
        picks = sorted(plan_rng.choice(len(site_pairs), size=n_links, replace=False))
        for i in picks:
            a, b = site_pairs[int(i)]
            injector.start_random_link(
                network.wan_link(a, b), config.link_mtbf_s, config.link_mttr_s
            )
    if config.partition_at_s is not None and config.n_sites > 1:
        injector.schedule_partition(
            network, [[sites[0]], sites[1:]],
            start=config.partition_at_s, duration=config.partition_duration_s,
        )
    if config.site_outage_at_s is not None and config.n_sites > 1:
        injector.schedule_site_outage(
            vdce.topology.site(sites[-1]), network,
            start=config.site_outage_at_s,
            duration=config.site_outage_duration_s,
        )
    if config.gm_crash_at_s is not None:
        gm_names = sorted(runtime.group_managers)
        victim = gm_names[int(plan_rng.choice(len(gm_names)))]
        injector.schedule_group_manager_crash(
            runtime.group_managers[victim], config.gm_crash_at_s
        )
    if config.sm_crash_at_s is not None:
        victim = sites[int(plan_rng.choice(len(sites)))]
        injector.schedule_site_manager_crash(
            runtime.site_managers[victim], config.sm_crash_at_s,
            duration=config.sm_crash_duration_s,
        )
    # performance faults draw AFTER every crash victim so that enabling
    # them leaves an existing config's crash plan untouched
    n_slow = min(config.n_slow_hosts, len(all_hosts))
    if n_slow:
        picks = sorted(plan_rng.choice(len(all_hosts), size=n_slow, replace=False))
        for i in picks:
            injector.schedule_host_slowdown(
                all_hosts[int(i)],
                start=config.slowdown_at_s,
                duration=config.slowdown_duration_s,
                factor=config.slowdown_factor,
            )
    n_flap = min(config.n_flapping_hosts, len(all_hosts))
    if n_flap:
        picks = sorted(plan_rng.choice(len(all_hosts), size=n_flap, replace=False))
        for i in picks:
            injector.start_flapping(
                all_hosts[int(i)],
                mean_normal_s=config.flap_mean_normal_s,
                mean_slow_s=config.flap_mean_slow_s,
                factor=config.flap_factor,
            )
    # data-plane corruption victims draw last, so arming them leaves
    # every crash/slowdown plan of an existing config untouched
    n_corrupt = min(config.n_corrupt_links, len(site_pairs))
    if n_corrupt:
        picks = sorted(plan_rng.choice(
            len(site_pairs), size=n_corrupt, replace=False
        ))
        for i in picks:
            a, b = site_pairs[int(i)]
            injector.schedule_link_corruption(
                network.wan_link(a, b),
                time=config.corruption_at_s,
                corrupt_prob=config.link_corrupt_prob,
                truncate_prob=config.link_truncate_prob,
                duration=config.corruption_duration_s,
            )
    if config.artifact_loss_at_s is not None and runtime.integrity is not None:
        victim_host = all_hosts[int(plan_rng.choice(len(all_hosts)))].name
        injector.schedule_artifact_loss(
            runtime.integrity, victim_host, config.artifact_loss_at_s
        )
    journal_victim = (
        int(plan_rng.choice(config.n_apps))
        if config.journal_corrupt_at_s is not None else None
    )
    # membership churn victims draw after EVERY other chaos:plan draw,
    # so arming churn never perturbs an existing config's fault plan.
    # Group leaders and site servers are never eligible — the control
    # plane they run is not what elastic membership removes.
    churn_targets: List[str] = []
    if config.n_churn_hosts:
        protected = set()
        for site_name in sites:
            site = vdce.topology.site(site_name)
            protected.add(site.server_host.name)
            for group in site.groups.values():
                protected.add(group.spec.leader)
        eligible = sorted(
            h.name for h in all_hosts if h.name not in protected
        )
        n_churn = min(config.n_churn_hosts, len(eligible))
        if n_churn:
            picks = sorted(plan_rng.choice(
                len(eligible), size=n_churn, replace=False
            ))
            churn_targets = [eligible[int(i)] for i in picks]
            by_site: Dict[str, List[str]] = {}
            for name in churn_targets:
                site_name = vdce.topology.host(name).site_name
                by_site.setdefault(site_name, []).append(name)
            for site_name in sorted(by_site):
                injector.schedule_churn(
                    runtime.site_managers[site_name], by_site[site_name],
                    start=config.churn_start_s,
                    window_s=config.churn_window_s,
                    drain_deadline_s=config.churn_drain_deadline_s,
                    rejoin_after_s=config.churn_rejoin_after_s,
                )

    # -- submit the application stream -------------------------------------
    outcomes: Dict[str, Dict[str, Any]] = {}
    coordinators: List[ExecutionCoordinator] = []
    #: app name -> (afg, ApplicationResult) of the completed run (for I5)
    completed_runs: Dict[str, Tuple[Any, Any]] = {}

    def run_app(afg, submit_site: str, delay: float,
                corrupt_journal: bool = False):
        yield Timeout(delay)
        submitted = sim.now
        # every app journals to an in-memory journal: same record stream
        # and byte accounting as a durable one, no filesystem
        journal = CheckpointJournal(None)
        if corrupt_journal:
            # the journal exists only from submission on; a fault slot
            # already in the past fires immediately
            injector.schedule_journal_corruption(
                journal, max(config.journal_corrupt_at_s, sim.now),
                label=afg.name,
            )
        restarted = False
        try:
            try:
                table, _sched = yield from runtime.schedule_process(
                    afg, SiteScheduler(k=config.k, model=runtime.model),
                    local_site=submit_site,
                )
                coordinator = ExecutionCoordinator(
                    runtime, afg, table, submit_site=submit_site,
                    journal=journal,
                )
                coordinators.append(coordinator)
                result = yield coordinator.start()
            except ManagerUnavailable:
                # the owning Site Manager crashed mid-flight: restart the
                # application from its checkpoint on a surviving site;
                # completed tasks are restored, only the frontier re-runs
                survivors = [
                    s for s in sites
                    if runtime.site_managers[s].alive and s != submit_site
                ]
                if not survivors:
                    raise
                # the dead incarnation's open spans are orphan-marked;
                # the restart opens a fresh root window for the app
                runtime.spans.abandon_app(
                    afg.name, reason="ManagerUnavailable", source="chaos"
                )
                checkpoint = ApplicationCheckpoint.from_records(
                    journal.records()
                )
                restarted = True
                submit_site = survivors[0]
                coordinator = ExecutionCoordinator(
                    runtime, checkpoint.afg, checkpoint.table,
                    submit_site=submit_site,
                    journal=journal, checkpoint=checkpoint,
                )
                coordinators.append(coordinator)
                result = yield coordinator.start()
            outcomes[afg.name] = {
                "status": "completed",
                "site": submit_site,
                "restarted": restarted,
                "submitted_at": round(submitted, 9),
                "makespan_s": round(result.makespan, 9),
                "reschedules": result.reschedules,
                "transfer_retries": result.transfer_retries,
                "channel_reestablishes": result.channel_reestablishes,
                "sites_used": sorted({r.site for r in result.records.values()}),
            }
            completed_runs[afg.name] = (coordinator.afg, result)
        except typed_errors as exc:
            runtime.spans.abandon_app(
                afg.name, reason=type(exc).__name__, source="chaos"
            )
            outcomes[afg.name] = {
                "status": "failed",
                "site": submit_site,
                "submitted_at": round(submitted, 9),
                "error": type(exc).__name__,
                "detail": str(exc),
            }
        except Exception as exc:  # noqa: BLE001 — untyped = I1 violation
            runtime.spans.abandon_app(
                afg.name, reason=type(exc).__name__, source="chaos"
            )
            outcomes[afg.name] = {
                "status": "crashed",
                "site": submit_site,
                "submitted_at": round(submitted, 9),
                "error": type(exc).__name__,
                "detail": str(exc),
            }

    procs = []
    for i, afg in enumerate(_build_apps(config)):
        submit_site = sites[i % len(sites)]
        delay = config.first_submit_s + i * config.app_spacing_s
        procs.append(sim.process(
            run_app(afg, submit_site, delay,
                    corrupt_journal=(i == journal_victim)),
            name=f"chaos:{afg.name}",
        ))

    # -- the arrival storm (bounded admission under overload) ---------------
    storm_queue = None
    storm_names: List[str] = []
    if config.storm_apps:
        from repro.workloads.pipelines import linear_pipeline

        storm_site = sites[0]
        users_db = runtime.repositories[storm_site].users
        for j in range(config.storm_users):
            users_db.add_user(
                f"storm{j}", "storm-pass", priority=1 + j % 3,
                access_domain=AccessDomain.GLOBAL,
            )
        storm_queue = AdmissionQueue(
            runtime,
            max_concurrent=config.storm_max_concurrent,
            site=storm_site,
            policy=AdmissionPolicy(
                max_queued=config.storm_max_queued,
                user_rate_per_s=config.storm_user_rate_per_s,
                user_burst=config.storm_user_burst,
                default_ttl_s=config.storm_ttl_s,
            ),
        )

        def run_storm_app(afg, user: str, delay: float,
                          deadline: Optional[float]):
            yield Timeout(delay)
            submitted = sim.now
            try:
                result = yield storm_queue.submit(
                    afg, user,
                    scheduler=SiteScheduler(k=config.k, model=runtime.model),
                    deadline_s=deadline,
                )
                outcomes[afg.name] = {
                    "status": "completed",
                    "site": storm_site,
                    "user": user,
                    "submitted_at": round(submitted, 9),
                    "makespan_s": round(result.makespan, 9),
                }
            except AdmissionRejected as exc:
                outcomes[afg.name] = {
                    "status": "rejected",
                    "site": storm_site,
                    "user": user,
                    "submitted_at": round(submitted, 9),
                    "error": exc.reason,
                }
            except AdmissionExpired as exc:
                outcomes[afg.name] = {
                    "status": "expired",
                    "site": storm_site,
                    "user": user,
                    "submitted_at": round(submitted, 9),
                    "error": f"waited {exc.waited_s:.3f}s",
                }
            except typed_errors as exc:
                outcomes[afg.name] = {
                    "status": "failed",
                    "site": storm_site,
                    "user": user,
                    "submitted_at": round(submitted, 9),
                    "error": type(exc).__name__,
                    "detail": str(exc),
                }
            except Exception as exc:  # noqa: BLE001 — untyped = I1 violation
                outcomes[afg.name] = {
                    "status": "crashed",
                    "site": storm_site,
                    "user": user,
                    "submitted_at": round(submitted, 9),
                    "error": type(exc).__name__,
                    "detail": str(exc),
                }

        for i in range(config.storm_apps):
            afg = linear_pipeline(n_stages=3, cost=4.0, edge_mb=1.0)
            afg.name = f"storm{i:02d}-{afg.name}"
            storm_names.append(afg.name)
            delay = (
                config.storm_start_s
                + (i // config.storm_burst) * config.storm_spacing_s
            )
            deadline = (
                config.storm_deadline_s
                if config.storm_deadline_s is not None and i % 3 == 2
                else None
            )
            procs.append(sim.process(
                run_storm_app(afg, f"storm{i % config.storm_users}",
                              delay, deadline),
                name=f"chaos:{afg.name}",
            ))

    # -- run ----------------------------------------------------------------
    sim.run(until=config.duration_s)
    grace_rounds = 0
    while any(not p.triggered for p in procs) and grace_rounds < 8:
        sim.run(until=sim.now + config.duration_s / 2)
        grace_rounds += 1
    # applications still in flight when the campaign stops leave their
    # spans open; mark them as orphans explicitly so I9 can tell a
    # deliberate cut-off from a silent leak
    runtime.spans.orphan_all(reason="campaign_end", source="chaos")

    # -- audit ---------------------------------------------------------------
    violations: List[str] = []

    # I1: typed completion
    for proc in procs:
        if not proc.triggered:
            violations.append(f"I1: application {proc.name!r} never settled")
    for name in sorted(outcomes):
        if outcomes[name]["status"] == "crashed":
            violations.append(
                f"I1: application {name!r} died with untyped "
                f"{outcomes[name]['error']}: {outcomes[name]['detail']}"
            )

    # I2: no successful attempt starts on a believed-down host
    believed_down = _believed_down_intervals(runtime.stats.detection_log)
    for coordinator in coordinators:
        for record in coordinator.records.values():
            if record.measured_time <= 0 or record.finished_at <= record.started_at:
                continue
            start = record.finished_at - record.measured_time
            for host in record.hosts:
                for down_at, up_at in believed_down.get(host, []):
                    if (down_at + _REPORT_DELIVERY_SLACK_S <= start
                            and (up_at is None or start < up_at)):
                        violations.append(
                            f"I2: task {record.task_id!r} of "
                            f"{coordinator.afg.name!r} started at {start:.3f} "
                            f"on {host!r}, believed down since {down_at:.3f}"
                        )

    # I4: injection log <-> detection log reconciliation
    detections = list(runtime.stats.detection_log)
    observed_fp = sum(
        gm.false_positives for gm in runtime.group_managers.values()
    )
    host_names = [h.name for h in all_hosts]
    down_intervals = {h: injector.downtime_intervals(h) for h in host_names}

    def actually_down(host: str, t: float) -> bool:
        return any(
            d <= t and (u is None or t < u)
            for d, u in down_intervals.get(host, [])
        )

    counted_fp = sum(
        1 for t, host, kind in detections
        if kind == "down" and host in down_intervals and not actually_down(host, t)
    )
    if counted_fp != observed_fp:
        violations.append(
            f"I4: false-positive reconciliation failed — {counted_fp} "
            f"detections of healthy hosts vs {observed_fp} recorded "
            "false positives"
        )
    if config.detector == "phi":
        # phi reaches phi_down once elapsed ≈ phi_down·ln10 mean
        # intervals; allow one period of phase lag plus slack
        window = (
            runtime.config.phi_down * math.log(10.0) + 3.0
        ) * config.echo_period_s
    else:
        window = (config.suspicion_threshold + 2) * config.echo_period_s
    for host in host_names:
        for down_at, up_at in down_intervals[host]:
            end = up_at if up_at is not None else sim.now
            if end - down_at <= window or down_at + window > sim.now:
                continue  # too short, or too close to campaign end
            if not _was_detected(detections, host, down_at, down_at + window):
                violations.append(
                    f"I4: outage of {host!r} at {down_at:.3f} "
                    f"(lasting {end - down_at:.3f}s) was never detected "
                    f"within the {window:.0f}s window"
                )

    # I5: resume equivalence — every completed app (restarted or not)
    # must reproduce the pure-evaluation oracle's terminal output hashes
    for name in sorted(completed_runs):
        app_afg, result = completed_runs[name]
        expected = expected_output_hashes(app_afg, runtime.registry)
        actual = final_output_hashes(result)
        if actual != expected:
            restarted = outcomes[name].get("restarted", False)
            violations.append(
                f"I5: application {name!r} "
                f"({'restarted' if restarted else 'uninterrupted'}) produced "
                f"output hashes {actual} != expected {expected}"
            )

    # I6: no orphaned group — every Site Manager re-registered, every
    # Group Manager live (original or deputy), every host owned by
    # exactly one live Group Manager
    for name in sorted(runtime.site_managers):
        if not runtime.site_managers[name].alive:
            violations.append(
                f"I6: site manager {name!r} still crashed at campaign end"
            )
    owners = {h: 0 for h in host_names}
    for gm_name in sorted(runtime.group_managers):
        gm = runtime.group_managers[gm_name]
        if not gm.alive:
            violations.append(
                f"I6: group {gm_name!r} has no live manager at campaign end"
            )
            continue
        for host in gm.host_names:
            owners[host] = owners.get(host, 0) + 1
    for host in sorted(owners):
        if owners[host] != 1:
            violations.append(
                f"I6: host {host!r} is owned by {owners[host]} live group "
                "managers (expected exactly 1)"
            )

    # I7: speculation safety — a completed application whose schedule
    # was decided by a backup win must still match the oracle exactly
    for coordinator in coordinators:
        wins = [
            e for e in coordinator.speculation_log
            if e["outcome"] == "backup_win"
        ]
        if not wins:
            continue
        name = coordinator.afg.name
        if name not in completed_runs:
            continue
        app_afg, result = completed_runs[name]
        expected = expected_output_hashes(app_afg, runtime.registry)
        actual = final_output_hashes(result)
        if actual != expected:
            violations.append(
                f"I7: application {name!r} completed with "
                f"{len(wins)} speculative backup win(s) but produced "
                f"output hashes {actual} != expected {expected}"
            )

    # I8: bounded waste — ≤1 backup per task attempt, every race a
    # completed application launched is resolved, and no backup starts
    # after its race was already decided
    for coordinator in coordinators:
        app_completed = coordinator.afg.name in completed_runs
        seen: Dict[Tuple[str, str, int], int] = {}
        for entry in coordinator.speculation_log:
            key = (entry["application"], entry["task"], entry["attempt"])
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > 1:
                violations.append(
                    f"I8: task {entry['task']!r} of "
                    f"{entry['application']!r} (attempt {entry['attempt']}) "
                    f"launched {seen[key]} backups for one race"
                )
            resolved_at = entry["resolved_at"]
            if resolved_at is not None and resolved_at < entry["launched_at"]:
                violations.append(
                    f"I8: backup for task {entry['task']!r} of "
                    f"{entry['application']!r} launched at "
                    f"{entry['launched_at']:.3f}, after its race was "
                    f"decided at {resolved_at:.3f}"
                )
            if app_completed and (
                entry["outcome"] is None or resolved_at is None
            ):
                violations.append(
                    f"I8: application {entry['application']!r} completed "
                    f"but the backup for task {entry['task']!r} was never "
                    "resolved (leaked speculative copy)"
                )

    # I9: span integrity — every opened span closed exactly once or
    # explicitly orphan-marked (abandon on app death, campaign cut-off)
    if config.causal_spans:
        from repro.obs.attribution import span_integrity

        for problem in span_integrity(tracer.events()):
            violations.append(f"I9: {problem}")

    # I10: bounded admission — the queue never exceeded its bound and
    # every storm submission reached a terminal outcome
    if storm_queue is not None:
        if storm_queue.peak_queued > config.storm_max_queued:
            violations.append(
                f"I10: admission queue depth peaked at "
                f"{storm_queue.peak_queued}, exceeding the bound "
                f"{config.storm_max_queued}"
            )
        terminal = ("completed", "failed", "rejected", "expired")
        for name in storm_names:
            status = outcomes.get(name, {}).get("status")
            if status not in terminal:
                violations.append(
                    f"I10: storm application {name!r} ended in "
                    f"{status!r}, not a terminal admission outcome"
                )

    # I11: breaker silence — no message ever rides an open circuit
    if runtime.breakers is not None:
        for problem in runtime.breakers.open_violations(sim.now):
            violations.append(f"I11: {problem}")

    # I12/I13: data-plane integrity (only audited when armed)
    integrity_section = None
    if runtime.integrity is not None:
        ledger = runtime.integrity
        # I12: every consumption in the ledger is clean — a task never
        # received bytes that mismatched the producer's recorded hash
        for consumption in ledger.consumption_log:
            if not consumption["clean"]:
                violations.append(
                    f"I12: application {consumption['application']!r} "
                    f"consumed bytes on {consumption['edge']!r} that "
                    "mismatch the producer's recorded content hash"
                )
        # I13: every incident is repaired, or poisoned with its
        # application dead; a completed app never carries an open
        # incident and never completes past a poisoned artifact
        completed = {
            name for name, outcome in outcomes.items()
            if outcome["status"] == "completed"
        }
        for incident in ledger.incidents:
            resolution = incident["resolution"]
            app = incident["application"]
            if resolution in ("refetched", "regenerated"):
                continue
            if resolution == "poisoned":
                if app in completed:
                    violations.append(
                        f"I13: application {app!r} completed despite the "
                        f"poison-quarantined {incident['target']!r}"
                    )
                continue
            if app in completed:
                violations.append(
                    f"I13: application {app!r} completed with an "
                    f"unresolved {incident['kind']} incident on "
                    f"{incident['target']!r}"
                )
        integrity_section = ledger.as_dict()

    # I14/I15/I16: elastic membership (only audited when churn armed)
    membership_section = None
    if churn_targets:
        transitions = runtime.membership.transitions

        # I14: no successful attempt starts on a host after its
        # drain/departure transition became visible (attempts already
        # running at drain time are allowed to finish — that is the
        # drain grace, not a violation)
        inactive: Dict[str, List[List[Optional[float]]]] = {}
        for entry in transitions:
            if entry["transition"] in ("drain", "depart"):
                spans_ = inactive.setdefault(entry["host"], [])
                if not spans_ or spans_[-1][1] is not None:
                    spans_.append([entry["time"], None])
            elif entry["transition"] == "rejoin":
                spans_ = inactive.get(entry["host"], [])
                if spans_ and spans_[-1][1] is None:
                    spans_[-1][1] = entry["time"]
        for coordinator in coordinators:
            for record in coordinator.records.values():
                if record.measured_time <= 0:
                    continue
                start = record.finished_at - record.measured_time
                for host in record.hosts:
                    for opened, closed in inactive.get(host, []):
                        if opened < start and (closed is None or start < closed):
                            violations.append(
                                f"I14: task {record.task_id!r} of "
                                f"{coordinator.afg.name!r} started at "
                                f"{start:.3f} on {host!r}, non-ACTIVE "
                                f"since {opened:.3f}"
                            )

        # I15: work evicted or invalidated by a membership transition
        # completes elsewhere, or the application dies typed
        drain_affected = 0
        for coordinator in coordinators:
            name = coordinator.afg.name
            status = outcomes.get(name, {}).get("status")
            for record in coordinator.records.values():
                evictions = [
                    r for r in record.reschedule_reasons
                    if "membership change" in r or "decommissioned" in r
                    or "drained" in r
                ]
                if not evictions:
                    continue
                drain_affected += 1
                if status == "completed" and record.measured_time <= 0:
                    violations.append(
                        f"I15: task {record.task_id!r} of {name!r} was "
                        f"evicted by a membership transition and never "
                        f"completed, yet the application 'completed'"
                    )
                if status == "crashed":
                    violations.append(
                        f"I15: application {name!r} died untyped after "
                        f"task {record.task_id!r} was evicted by a "
                        f"membership transition"
                    )

        # I16: every churn target whose last transition is a rejoin
        # ends the campaign ACTIVE and re-scorable (in the runnable
        # table host selection iterates over)
        from repro.repository.resources import MembershipState

        last_transition = {}
        for entry in transitions:
            last_transition[entry["host"]] = entry
        task_types = runtime.registry.names()
        for host_name in sorted(churn_targets):
            last = last_transition.get(host_name)
            if last is None or last["transition"] != "rejoin":
                continue
            repo = runtime.repositories[last["site"]]
            if not repo.resources.has_host(host_name):
                violations.append(
                    f"I16: rejoined host {host_name!r} has no repository "
                    "row at campaign end"
                )
                continue
            state = repo.resources.membership_state(host_name)
            if state != MembershipState.ACTIVE:
                violations.append(
                    f"I16: rejoined host {host_name!r} ended the campaign "
                    f"in state {state}, not ACTIVE"
                )
                continue
            if repo.resources.get(host_name).up:
                runnable = any(
                    any(r.spec.name == host_name
                        for r in repo.runnable_up_hosts(t))
                    for t in task_types
                )
                if not runnable:
                    violations.append(
                        f"I16: rejoined host {host_name!r} is ACTIVE and "
                        "up but absent from every runnable table — host "
                        "selection will never re-score it"
                    )
        membership_section = {
            "targets": list(churn_targets),
            "drain_affected_tasks": drain_affected,
            "transitions": [
                {
                    "time": round(e["time"], 9),
                    "host": e["host"],
                    "site": e["site"],
                    "transition": e["transition"],
                    "epoch": e["epoch"],
                }
                for e in transitions
            ],
        }

    if trace_path is not None:
        from repro.trace.serialize import write_jsonl

        write_jsonl(tracer, trace_path)

    return ChaosReport(
        config=config,
        outcomes=outcomes,
        violations=violations,
        injection_events=len(injector.log),
        detections=len(detections),
        false_positives=observed_fp,
        final_time=sim.now,
        trace_hash=vdce.trace_hash(),
        metrics_hash=vdce.metrics_hash(),
        injection_log=[
            {
                "time": round(e.time, 9),
                "target": e.host,
                "kind": e.kind,
                "factor": round(e.factor, 9),
            }
            for e in injector.log
        ],
        speculative_launches=runtime.stats.speculative_launches,
        speculative_wins=runtime.stats.speculative_wins,
        speculative_wasted_s=runtime.stats.speculative_wasted_s,
        quarantined_hosts=(
            sorted(runtime.health.quarantined_hosts())
            if runtime.health is not None else []
        ),
        sheds=(len(storm_queue.shed_log) if storm_queue is not None else 0),
        shed_log=(
            list(storm_queue.shed_log) if storm_queue is not None else []
        ),
        peak_queued=(
            storm_queue.peak_queued if storm_queue is not None else 0
        ),
        brownout_shifts=(
            len(runtime.brownout.shifts)
            if runtime.brownout is not None else 0
        ),
        breaker_transitions=(
            len(runtime.breakers.transitions)
            if runtime.breakers is not None else 0
        ),
        breaker_fast_fails=(
            runtime.breakers.fast_fails
            if runtime.breakers is not None else 0
        ),
        integrity=integrity_section,
        membership=membership_section,
    )


def _believed_down_intervals(
    detection_log,
) -> Dict[str, List[Tuple[float, Optional[float]]]]:
    """Per-host ``(down_at, up_at)`` intervals from the detection log."""
    intervals: Dict[str, List[Tuple[float, Optional[float]]]] = {}
    open_at: Dict[str, float] = {}
    for t, host, kind in detection_log:
        if kind == "down" and host not in open_at:
            open_at[host] = t
        elif kind == "up" and host in open_at:
            intervals.setdefault(host, []).append((open_at.pop(host), t))
    for host, t in open_at.items():
        intervals.setdefault(host, []).append((t, None))
    return intervals


def _was_detected(detections, host: str, start: float, deadline: float) -> bool:
    """Was ``host`` believed down at any point in [start, deadline]?

    True if a "down" detection lands in the window, or the host was
    already believed down when the outage began (prior "down" with no
    intervening "up").
    """
    state_down = False
    for t, h, kind in detections:
        if h != host:
            continue
        if t < start:
            state_down = kind == "down"
        elif t <= deadline and kind == "down":
            return True
        elif t > deadline:
            break
    return state_down

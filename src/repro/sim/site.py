"""Sites and groups: the administrative units of VDCE.

The paper organises each site as a VDCE Server machine plus resources
partitioned into *groups*, each with a group-leader machine running a
Group Manager and per-host Monitor daemons (§4.1, Fig. 4).  This module
provides the passive structure (which hosts belong where); the active
management processes live in :mod:`repro.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.host import Host, HostSpec
from repro.sim.kernel import SimulationError, Simulator

__all__ = ["Group", "GroupSpec", "Site", "SiteSpec"]


@dataclass(frozen=True)
class GroupSpec:
    """A group of hosts headed by a leader machine."""

    name: str
    leader: str
    hosts: tuple[HostSpec, ...]

    def __post_init__(self) -> None:
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"group {self.name!r}: duplicate host names")
        if self.leader not in names:
            raise ValueError(
                f"group {self.name!r}: leader {self.leader!r} is not a member host"
            )


@dataclass(frozen=True)
class SiteSpec:
    """Static description of one VDCE site."""

    name: str
    groups: tuple[GroupSpec, ...]
    #: the VDCE Server machine of the site (runs Site Manager + scheduler)
    server: str = ""

    def __post_init__(self) -> None:
        all_names: list[str] = []
        for g in self.groups:
            all_names.extend(h.name for h in g.hosts)
        if len(set(all_names)) != len(all_names):
            raise ValueError(f"site {self.name!r}: duplicate host names across groups")
        if self.server and self.server not in all_names:
            raise ValueError(
                f"site {self.name!r}: server {self.server!r} is not a site host"
            )

    @property
    def host_specs(self) -> List[HostSpec]:
        return [h for g in self.groups for h in g.hosts]

    @property
    def server_name(self) -> str:
        if self.server:
            return self.server
        return self.groups[0].hosts[0].name


class Group:
    """Instantiated group: leader host + member :class:`Host` objects."""

    def __init__(self, sim: Simulator, spec: GroupSpec, site_name: str):
        self.sim = sim
        self.spec = spec
        self.site_name = site_name
        self.hosts: Dict[str, Host] = {
            h.name: Host(sim, h, site_name=site_name) for h in spec.hosts
        }

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def leader(self) -> Host:
        return self.hosts[self.spec.leader]

    # -- elastic membership (the instance roster may drift from the
    # -- frozen spec once hosts join or leave at runtime) -------------------

    def add_host(self, host: Host) -> Host:
        if host.name in self.hosts:
            raise SimulationError(
                f"group {self.name!r} already has host {host.name!r}"
            )
        self.hosts[host.name] = host
        return host

    def remove_host(self, name: str) -> Host:
        if name == self.spec.leader:
            raise SimulationError(
                f"group {self.name!r}: cannot remove leader {name!r}"
            )
        try:
            return self.hosts.pop(name)
        except KeyError:
            raise SimulationError(
                f"group {self.name!r} has no host {name!r}"
            ) from None

    def __iter__(self):
        # Snapshot: callers iterate across yields (the Group Manager's
        # echo loop), and membership changes may mutate the roster
        # mid-round.
        return iter(list(self.hosts.values()))

    def __len__(self) -> int:
        return len(self.hosts)


class Site:
    """Instantiated site: groups of live hosts plus lookup helpers."""

    def __init__(self, sim: Simulator, spec: SiteSpec):
        if not spec.groups:
            raise SimulationError(f"site {spec.name!r} has no groups")
        self.sim = sim
        self.spec = spec
        self.groups: Dict[str, Group] = {
            g.name: Group(sim, g, spec.name) for g in spec.groups
        }
        self._hosts: Dict[str, Host] = {}
        for group in self.groups.values():
            self._hosts.update(group.hosts)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def server_host(self) -> Host:
        return self._hosts[self.spec.server_name]

    @property
    def hosts(self) -> Dict[str, Host]:
        return dict(self._hosts)

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise SimulationError(
                f"site {self.name!r} has no host {name!r}"
            ) from None

    def group_of(self, host_name: str) -> Group:
        for group in self.groups.values():
            if host_name in group.hosts:
                return group
        raise SimulationError(f"site {self.name!r} has no host {host_name!r}")

    # -- elastic membership --------------------------------------------------

    def add_host(self, group_name: str, host: Host) -> Host:
        """Attach a live host to one of this site's groups at runtime."""
        try:
            group = self.groups[group_name]
        except KeyError:
            raise SimulationError(
                f"site {self.name!r} has no group {group_name!r}"
            ) from None
        if host.name in self._hosts:
            raise SimulationError(
                f"site {self.name!r} already has host {host.name!r}"
            )
        group.add_host(host)
        self._hosts[host.name] = host
        return host

    def remove_host(self, name: str) -> Host:
        """Detach a host from the site (and its group) at runtime."""
        if name == self.spec.server_name:
            raise SimulationError(
                f"site {self.name!r}: cannot remove the VDCE server host "
                f"{name!r}"
            )
        group = self.group_of(name)  # raises for unknown hosts
        group.remove_host(name)
        return self._hosts.pop(name)

    def up_hosts(self) -> List[Host]:
        return [h for h in self._hosts.values() if h.is_up()]

    def __iter__(self):
        return iter(self._hosts.values())

    def __len__(self) -> int:
        return len(self._hosts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site({self.name!r}, hosts={len(self._hosts)})"


def make_uniform_site(
    sim: Simulator,
    name: str,
    n_hosts: int,
    speed: float = 1.0,
    memory_mb: int = 256,
    group_size: int = 0,
) -> Site:
    """Convenience constructor: ``n_hosts`` identical hosts in one or more groups."""
    if n_hosts <= 0:
        raise ValueError("n_hosts must be positive")
    group_size = group_size or n_hosts
    specs = [
        HostSpec(name=f"{name}-h{i:02d}", speed=speed, memory_mb=memory_mb)
        for i in range(n_hosts)
    ]
    groups = []
    for gi in range(0, n_hosts, group_size):
        members = tuple(specs[gi : gi + group_size])
        groups.append(
            GroupSpec(name=f"{name}-g{gi // group_size}", leader=members[0].name,
                      hosts=members)
        )
    return Site(sim, SiteSpec(name=name, groups=tuple(groups)))

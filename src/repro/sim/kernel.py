"""Deterministic discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: *processes* are
Python generators that ``yield`` waitable objects (:class:`Timeout`,
:class:`Signal`, :class:`Process`, :class:`AllOf`, :class:`AnyOf`) and
are resumed by the :class:`Simulator` when the waited-on condition
fires.  Event ordering is fully deterministic: ties in virtual time are
broken by a monotonically increasing sequence number, and all randomness
is drawn from named, seed-derived :mod:`numpy` generator streams
(:meth:`Simulator.rng`), so two runs with the same seed produce
identical traces regardless of host platform or dict ordering.

The kernel intentionally keeps the waitable vocabulary small; the whole
VDCE runtime (monitor daemons, group managers, echo packets, channel
setup, task execution) is expressed with these five primitives.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

import numpy as np

from repro.trace.events import EventKind
from repro.trace.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.registry import MetricsRegistry

# the registry import is deferred to Simulator.__init__: repro.metrics's
# package init reaches repro.sim.host (via the repository), which would
# close an import cycle through this module

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Signal",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, double-firing signals, ...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries an arbitrary payload describing why — the VDCE
    Application Controller uses it to abort task executions whose host
    load crossed the rescheduling threshold (paper §4.1).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Waitable:
    """Base class for things a process may ``yield``."""

    #: set by the kernel when the waitable has fired
    triggered: bool = False
    #: value delivered to the waiting process
    value: Any = None

    def _subscribe(self, sim: "Simulator", callback: Callable[["_Waitable"], None]) -> None:
        raise NotImplementedError


class Timeout(_Waitable):
    """Fires after ``delay`` units of virtual time, delivering ``value``."""

    __slots__ = ("delay", "value", "triggered", "_callback")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative Timeout delay: {delay!r}")
        self.delay = float(delay)
        self.value = value
        self.triggered = False
        self._callback: Optional[Callable[[_Waitable], None]] = None

    def _subscribe(self, sim: "Simulator", callback: Callable[[_Waitable], None]) -> None:
        # First (and in practice only) waiter rides the bound method —
        # one fewer closure allocation per simulated event.  A shared
        # timeout's extra waiters fall back to per-waiter closures.
        if self._callback is None:
            self._callback = callback
            sim.call_at(sim.now + self.delay, self._fire)
        else:
            def fire() -> None:
                self.triggered = True
                callback(self)

            sim.call_at(sim.now + self.delay, fire)

    def _fire(self) -> None:
        self.triggered = True
        self._callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay})"


class Signal(_Waitable):
    """A one-shot event that any number of processes can wait on.

    ``succeed(value)`` wakes all current and future waiters with
    ``value``; ``fail(exc)`` raises ``exc`` inside them.  Signals are
    the kernel's rendezvous primitive: the Data Manager's channel-setup
    acknowledgements and the "execution startup signal" of paper §4.2
    are literal :class:`Signal` instances.
    """

    __slots__ = ("name", "triggered", "value", "_exc", "_callbacks")

    def __init__(self, name: str = ""):
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[[_Waitable], None]] = []

    def succeed(self, value: Any = None) -> "Signal":
        if self.triggered:
            raise SimulationError(f"signal {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def fail(self, exc: BaseException) -> "Signal":
        if self.triggered:
            raise SimulationError(f"signal {self.name!r} already triggered")
        self.triggered = True
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    @property
    def failed(self) -> bool:
        return self._exc is not None

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    def _subscribe(self, sim: "Simulator", callback: Callable[[_Waitable], None]) -> None:
        if self.triggered:
            # Deliver asynchronously so waiters never run inside succeed().
            sim.call_at(sim.now, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.triggered else "pending"
        return f"Signal({self.name!r}, {state})"


class AllOf(_Waitable):
    """Fires when every child has fired; value is their value list.

    A child that *fails* (a failed :class:`Signal` or a :class:`Process`
    that raised) fails the composite immediately — its exception is
    re-raised in the waiting process rather than silently swallowed.
    """

    def __init__(self, children: Iterable[_Waitable]):
        self.children = list(children)
        self.triggered = False
        self.value: Any = None
        self._exc: Optional[BaseException] = None

    def _subscribe(self, sim: "Simulator", callback: Callable[[_Waitable], None]) -> None:
        remaining = len(self.children)
        if remaining == 0:
            self.triggered = True
            self.value = []
            sim.call_at(sim.now, lambda: callback(self))
            return

        pending = [remaining]
        failed = [False]

        def child_done(child: _Waitable) -> None:
            if failed[0]:
                return
            child_exc = getattr(child, "_exc", None)
            if child_exc is not None:
                failed[0] = True
                self.triggered = True
                self._exc = child_exc
                if hasattr(child, "_exc_observed"):
                    child._exc_observed = True
                callback(self)
                return
            pending[0] -= 1
            if pending[0] == 0:
                self.triggered = True
                self.value = [c.value for c in self.children]
                callback(self)

        for child in self.children:
            child._subscribe(sim, child_done)


class AnyOf(_Waitable):
    """Fires when the first child fires; value is ``(index, child_value)``.

    If the first child to fire *failed*, its exception propagates to
    the waiter.
    """

    def __init__(self, children: Iterable[_Waitable]):
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf requires at least one child")
        self.triggered = False
        self.value: Any = None
        self._exc: Optional[BaseException] = None

    def _subscribe(self, sim: "Simulator", callback: Callable[[_Waitable], None]) -> None:
        done = [False]

        def make_child_done(index: int) -> Callable[[_Waitable], None]:
            def child_done(child: _Waitable) -> None:
                if done[0]:
                    return
                done[0] = True
                self.triggered = True
                child_exc = getattr(child, "_exc", None)
                if child_exc is not None:
                    self._exc = child_exc
                    if hasattr(child, "_exc_observed"):
                        child._exc_observed = True
                else:
                    self.value = (index, child.value)
                callback(self)

            return child_done

        for i, child in enumerate(self.children):
            child._subscribe(sim, make_child_done(i))


ProcessGenerator = Generator[_Waitable, Any, Any]


class Process(_Waitable):
    """A running generator process; itself waitable (fires on return).

    The return value of the generator becomes :attr:`value`.  An
    uncaught exception inside the generator is stored and re-raised in
    any process that waits on this one (and escalated to
    :meth:`Simulator.run` if nobody does).
    """

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.triggered = False
        self.value: Any = None
        self._exc: Optional[BaseException] = None
        self._exc_observed = False
        self._callbacks: list[Callable[[_Waitable], None]] = []
        self._interrupting = False
        self._current_wait: Optional[_Waitable] = None
        if sim.tracer.enabled:
            sim.tracer.emit(EventKind.PROCESS_SPAWN, source=self.name)
        sim.call_at(sim.now, lambda: self._step(None, None))

    # -- public API ---------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self.triggered

    @property
    def failed(self) -> bool:
        return self._exc is not None

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            return
        self._interrupting = True
        cause_exc = Interrupt(cause)
        self.sim.call_at(self.sim.now, lambda: self._deliver_interrupt(cause_exc))

    # -- kernel machinery ----------------------------------------------

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self.triggered:
            return
        self._interrupting = False
        self._current_wait = None
        self._step(None, exc)

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        try:
            if throw_exc is not None:
                target = self.gen.throw(throw_exc)
            else:
                target = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self._finish(None, exc)
            return

        if not isinstance(target, _Waitable):
            self._finish(
                None,
                SimulationError(
                    f"process {self.name!r} yielded non-waitable {target!r}"
                ),
            )
            return

        self._current_wait = target

        def resume(waited: _Waitable) -> None:
            if self.triggered or self._interrupting or self._current_wait is not waited:
                return
            self._current_wait = None
            exc = getattr(waited, "_exc", None)
            if exc is not None:
                self._step(None, exc)
            else:
                self._step(waited.value, None)

        target._subscribe(self.sim, resume)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self.triggered = True
        self.value = value
        self._exc = exc
        if self.sim.tracer.enabled:
            if exc is None:
                self.sim.tracer.emit(EventKind.PROCESS_FINISH, source=self.name)
            else:
                self.sim.tracer.emit(
                    EventKind.PROCESS_FAIL, source=self.name,
                    error=type(exc).__name__,
                )
        if exc is not None:
            self.sim._record_failed_process(self)
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def _subscribe(self, sim: "Simulator", callback: Callable[[_Waitable], None]) -> None:
        self._exc_observed = True
        if self.triggered:
            sim.call_at(sim.now, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"Process({self.name!r}, {state})"


class _ScheduledCall:
    """Handle for one calendar entry; ``cancelled`` skips it at pop time.

    The calendar heap stores ``(time, seq, call)`` tuples rather than
    these handles: ``seq`` is unique, so heap comparisons resolve in C
    on the ``(time, seq)`` prefix and never reach the handle — the
    dataclass ``__lt__`` this replaces was a top-ten frame on
    bench_scalability.  Event order is the same ``(time, seq)`` total
    order as before.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False


class Simulator:
    """The event loop: virtual clock, calendar queue, RNG streams, tracing.

    Parameters
    ----------
    seed:
        Master seed.  Every component draws randomness from
        :meth:`rng`, which derives an independent stream from
        ``(seed, name)`` — adding a new random component never perturbs
        existing streams.
    """

    def __init__(self, seed: int = 0):
        from repro.metrics.registry import NULL_METRICS

        self.seed = int(seed)
        self.now: float = 0.0
        #: heap of (time, seq, _ScheduledCall) — see _ScheduledCall
        self._queue: list[tuple[float, int, _ScheduledCall]] = []
        self._seq = itertools.count()
        self._rngs: dict[str, np.random.Generator] = {}
        self._failed: list[Process] = []
        self._trace: Optional[list[tuple[float, str, dict]]] = None
        #: structured tracer (no-op unless a real Tracer is attached)
        self.tracer: Tracer = NULL_TRACER
        #: metrics registry (no-op unless a real registry is attached)
        self.metrics: MetricsRegistry = NULL_METRICS
        self._metric_events = NULL_METRICS.counter("")
        self._metric_depth = NULL_METRICS.histogram("")
        self.events_processed = 0

    # -- randomness -----------------------------------------------------

    def rng(self, name: str) -> np.random.Generator:
        """Named deterministic RNG stream (stable across runs and platforms)."""
        if name not in self._rngs:
            child = np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=tuple(name.encode("utf-8")),
            )
            self._rngs[name] = np.random.default_rng(child)
        return self._rngs[name]

    # -- tracing ----------------------------------------------------------

    def attach_tracer(self, tracer: Tracer) -> Tracer:
        """Install a structured tracer and bind it to the virtual clock.

        Kernel process lifecycle events (spawn/finish/fail) are emitted
        whenever the attached tracer is enabled; the rest of the stack
        shares the same tracer through :class:`~repro.runtime.vdce_runtime.VDCERuntime`.
        """
        self.tracer = tracer
        tracer.bind_clock(lambda: self.now)
        return tracer

    # -- metrics ----------------------------------------------------------

    def attach_metrics(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Install a metrics registry and bind it to the virtual clock.

        The kernel contributes the event-loop instruments (events
        processed, calendar-queue depth); the rest of the stack shares
        the same registry through
        :class:`~repro.runtime.vdce_runtime.VDCERuntime`.
        """
        self.metrics = registry
        registry.bind_clock(lambda: self.now)
        self._metric_events = registry.counter(
            "sim_events_total", "kernel calendar events executed"
        )
        self._metric_depth = registry.histogram(
            "sim_queue_depth",
            "pending calendar-queue depth sampled at each event",
            buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
        )
        return registry

    def export_metrics(self) -> None:
        """Set the kernel's end-of-run gauges (virtual time, event rate)."""
        if not self.metrics.enabled:
            return
        self.metrics.gauge(
            "sim_virtual_time_seconds", "virtual clock at export time"
        ).set(self.now)
        self.metrics.gauge(
            "sim_events_per_sim_second",
            "events executed per unit of virtual time",
        ).set(self.events_processed / self.now if self.now > 0 else 0.0)

    def enable_trace(self) -> None:
        """Record ``(time, kind, payload)`` tuples for visualisation/tests."""
        if self._trace is None:
            self._trace = []

    def trace(self, kind: str, **payload: Any) -> None:
        if self._trace is not None:
            self._trace.append((self.now, kind, payload))

    @property
    def trace_log(self) -> list[tuple[float, str, dict]]:
        return list(self._trace or [])

    # -- scheduling -------------------------------------------------------

    def call_at(self, time: float, callback: Callable[[], None]) -> _ScheduledCall:
        """Schedule a raw callback at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        call = _ScheduledCall(float(time), next(self._seq), callback)
        heapq.heappush(self._queue, (call.time, call.seq, call))
        return call

    def call_after(self, delay: float, callback: Callable[[], None]) -> _ScheduledCall:
        """Schedule a raw callback ``delay`` units from now."""
        return self.call_at(self.now + delay, callback)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    def signal(self, name: str = "") -> Signal:
        return Signal(name)

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Start a generator as a kernel process."""
        return Process(self, gen, name=name)

    # -- running -----------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Execute events until the queue drains, ``until`` is reached, or
        ``stop_when()`` becomes true.

        Returns the final value of the virtual clock.  If a process died
        with an exception that no other process observed, the exception
        is re-raised here — silent failures do not exist.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            if stop_when is not None and stop_when():
                return self.now
            time, _seq, call = queue[0]
            if call.cancelled:
                pop(queue)
                continue
            if until is not None and time > until:
                break
            pop(queue)
            self.now = time
            self.events_processed += 1
            if self.metrics.enabled:
                self._metric_events.inc()
                self._metric_depth.observe(len(queue))
            call.callback()
            if self._failed:
                self._raise_unobserved_failures()
        if until is not None and self.now < until and (
            stop_when is None or not stop_when()
        ):
            self.now = float(until)
        return self.now

    def run_until_complete(self, proc: Process, limit: Optional[float] = None) -> Any:
        """Run until ``proc`` finishes; return its value or raise its error.

        Stops as soon as the process completes, so perpetual background
        processes (monitor daemons, echo loops) do not prevent return.
        """
        self.run(until=limit, stop_when=lambda: proc.triggered)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not complete by t={self.now}"
            )
        if proc.exception is not None:
            proc._exc_observed = True
            raise proc.exception
        return proc.value

    def _record_failed_process(self, proc: Process) -> None:
        self._failed.append(proc)

    def _raise_unobserved_failures(self) -> None:
        while self._failed:
            proc = self._failed.pop()
            if not proc._exc_observed and proc._exc is not None:
                raise proc._exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={len(self._queue)})"

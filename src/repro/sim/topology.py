"""Topology: a whole VDCE deployment — sites, hosts and the network.

A :class:`Topology` bundles the :class:`~repro.sim.kernel.Simulator`,
all :class:`~repro.sim.site.Site` objects and the
:class:`~repro.sim.network.Network` so that schedulers, runtimes and
experiments share one coherent world.  :class:`TopologyBuilder` offers
a fluent construction API; :func:`two_site_topology` and
:func:`star_topology` build the standard experiment fixtures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.host import Host, HostSpec
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.network import LinkSpec, Network
from repro.sim.site import GroupSpec, Site, SiteSpec

__all__ = ["Topology", "TopologyBuilder", "star_topology", "two_site_topology"]


class Topology:
    """All sites plus the network that joins them."""

    def __init__(self, sim: Simulator, sites: Sequence[Site], network: Network):
        self.sim = sim
        self.sites: Dict[str, Site] = {}
        for site in sites:
            if site.name in self.sites:
                raise SimulationError(f"duplicate site name {site.name!r}")
            self.sites[site.name] = site
        self.network = network
        self._host_index: Dict[str, Host] = {}
        for site in sites:
            for host in site:
                if host.name in self._host_index:
                    raise SimulationError(f"duplicate host name {host.name!r}")
                self._host_index[host.name] = host
                network.register_host(host.name, site.name)

    # -- lookup -----------------------------------------------------------

    def site(self, name: str) -> Site:
        try:
            return self.sites[name]
        except KeyError:
            raise SimulationError(f"unknown site {name!r}") from None

    def host(self, name: str) -> Host:
        try:
            return self._host_index[name]
        except KeyError:
            raise SimulationError(f"unknown host {name!r}") from None

    def site_of_host(self, host_name: str) -> Site:
        return self.site(self.network.site_of(host_name))

    @property
    def all_hosts(self) -> List[Host]:
        return list(self._host_index.values())

    # -- elastic membership --------------------------------------------------

    def attach_host(self, site_name: str, group_name: str, spec: HostSpec) -> Host:
        """Instantiate a new host and wire it into a site's group.

        The network keeps a host's name -> site mapping forever (late
        messages must still route), so a rejoining host must come back
        at the site it departed from.
        """
        if spec.name in self._host_index:
            raise SimulationError(f"duplicate host name {spec.name!r}")
        site = self.site(site_name)
        if self.network.has_host(spec.name):
            known = self.network.site_of(spec.name)
            if known != site_name:
                raise SimulationError(
                    f"host {spec.name!r} previously lived at site {known!r}; "
                    f"it cannot rejoin at {site_name!r}"
                )
        else:
            self.network.register_host(spec.name, site_name)
        host = Host(self.sim, spec, site_name=site_name)
        site.add_host(group_name, host)
        self._host_index[spec.name] = host
        return host

    def detach_host(self, host_name: str) -> Host:
        """Remove a host from its site; the network mapping survives."""
        host = self.host(host_name)  # raises for unknown hosts
        self.site(host.site_name).remove_host(host_name)
        del self._host_index[host_name]
        return host

    @property
    def site_names(self) -> List[str]:
        return list(self.sites.keys())

    def neighbor_sites(self, origin: str, k: Optional[int] = None) -> List[str]:
        """The ``k`` nearest remote sites of ``origin``, by WAN latency.

        This realises step 2 of the site scheduler algorithm (Fig. 2):
        "Select k nearest VDCE neighbor sites".  Distance is the WAN
        link latency recorded in the network (the repository's network
        attributes); ties break on site name for determinism.
        """
        origin_site = self.site(origin)  # validates
        del origin_site
        others = [s for s in self.sites if s != origin]
        others.sort(
            key=lambda s: (self.network.wan_link(origin, s).spec.latency_s, s)
        )
        if k is None:
            return others
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return others[:k]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(sites={list(self.sites)}, hosts={len(self._host_index)})"


class TopologyBuilder:
    """Fluent builder for multi-site deployments.

    Example::

        topo = (TopologyBuilder(seed=7)
                .lan_defaults(latency_s=1e-3, bandwidth_mbps=12.0)
                .wan_defaults(latency_s=0.04, bandwidth_mbps=1.5)
                .site("syr", hosts=[("grad1", 1.0, 128), ("grad2", 2.0, 256)])
                .site("cs", n_hosts=4, speed=1.5)
                .wan("syr", "cs", latency_s=0.02, bandwidth_mbps=2.0)
                .build())
    """

    def __init__(self, seed: int = 0, sim: Optional[Simulator] = None):
        self.sim = sim or Simulator(seed=seed)
        self._site_specs: List[SiteSpec] = []
        self._lan_overrides: Dict[str, LinkSpec] = {}
        self._wan_overrides: List[Tuple[str, str, LinkSpec]] = []
        self._default_lan = LinkSpec(latency_s=0.0005, bandwidth_mbps=10.0, name="lan")
        self._default_wan = LinkSpec(latency_s=0.05, bandwidth_mbps=1.0, name="wan")

    def lan_defaults(self, latency_s: float, bandwidth_mbps: float) -> "TopologyBuilder":
        self._default_lan = LinkSpec(latency_s, bandwidth_mbps, "lan")
        return self

    def wan_defaults(self, latency_s: float, bandwidth_mbps: float) -> "TopologyBuilder":
        self._default_wan = LinkSpec(latency_s, bandwidth_mbps, "wan")
        return self

    def site(
        self,
        name: str,
        hosts: Optional[Iterable] = None,
        n_hosts: int = 0,
        speed: float = 1.0,
        memory_mb: int = 256,
        group_size: int = 0,
        lan: Optional[LinkSpec] = None,
    ) -> "TopologyBuilder":
        """Add a site, either from explicit hosts — ``(name, speed,
        memory)`` tuples or full :class:`HostSpec` objects — or as
        ``n_hosts`` uniform machines."""
        if hosts is not None:
            specs = [
                h if isinstance(h, HostSpec)
                else HostSpec(name=h[0], speed=h[1], memory_mb=h[2])
                for h in hosts
            ]
        elif n_hosts > 0:
            specs = [
                HostSpec(name=f"{name}-h{i:02d}", speed=speed, memory_mb=memory_mb)
                for i in range(n_hosts)
            ]
        else:
            raise ValueError(f"site {name!r}: provide hosts or n_hosts")
        gsize = group_size or len(specs)
        groups = []
        for gi in range(0, len(specs), gsize):
            members = tuple(specs[gi : gi + gsize])
            groups.append(
                GroupSpec(
                    name=f"{name}-g{gi // gsize}",
                    leader=members[0].name,
                    hosts=members,
                )
            )
        self._site_specs.append(SiteSpec(name=name, groups=tuple(groups)))
        if lan is not None:
            self._lan_overrides[name] = lan
        return self

    def wan(self, site_a: str, site_b: str, latency_s: float,
            bandwidth_mbps: float) -> "TopologyBuilder":
        self._wan_overrides.append(
            (site_a, site_b, LinkSpec(latency_s, bandwidth_mbps, "wan"))
        )
        return self

    def build(self) -> Topology:
        if not self._site_specs:
            raise SimulationError("topology has no sites")
        network = Network(self.sim, default_lan=self._default_lan,
                          default_wan=self._default_wan)
        sites = [Site(self.sim, spec) for spec in self._site_specs]
        topo = Topology(self.sim, sites, network)
        for site_name, lan in self._lan_overrides.items():
            network.set_lan(site_name, lan)
        for a, b, spec in self._wan_overrides:
            network.set_wan(a, b, spec)
        return topo


def two_site_topology(
    seed: int = 0,
    hosts_per_site: int = 3,
    speeds: Sequence[float] = (1.0, 1.5, 2.0),
    wan_latency_s: float = 0.05,
    wan_bandwidth_mbps: float = 1.0,
) -> Topology:
    """The paper's Figure 1 setting: two campus sites joined by a WAN link.

    Host speeds cycle through ``speeds`` so each site is heterogeneous —
    the host-selection algorithm has real choices to make.
    """
    builder = TopologyBuilder(seed=seed).wan_defaults(wan_latency_s, wan_bandwidth_mbps)
    for site_name in ("site-a", "site-b"):
        hosts = [
            (f"{site_name}-h{i:02d}", float(speeds[i % len(speeds)]), 256)
            for i in range(hosts_per_site)
        ]
        builder.site(site_name, hosts=hosts)
    return builder.build()


def star_topology(
    seed: int = 0,
    n_sites: int = 4,
    hosts_per_site: int = 4,
    speeds: Sequence[float] = (1.0, 1.5, 2.0, 2.5),
    hub_latency_s: float = 0.03,
    far_latency_s: float = 0.12,
    wan_bandwidth_mbps: float = 1.0,
) -> Topology:
    """``n_sites`` sites with WAN latency growing with site index.

    Site 0 is the "local" site; site *i*'s latency to every other site
    interpolates between ``hub_latency_s`` and ``far_latency_s``, so the
    k-nearest-neighbour selection of the site scheduler is meaningful.
    """
    if n_sites < 1:
        raise ValueError("n_sites must be >= 1")
    builder = TopologyBuilder(seed=seed).wan_defaults(far_latency_s, wan_bandwidth_mbps)
    names = [f"site-{i}" for i in range(n_sites)]
    for i, site_name in enumerate(names):
        hosts = [
            (f"{site_name}-h{j:02d}", float(speeds[(i + j) % len(speeds)]), 256)
            for j in range(hosts_per_site)
        ]
        builder.site(site_name, hosts=hosts)
    for i in range(n_sites):
        for j in range(i + 1, n_sites):
            span = max(1, n_sites - 1)
            frac = (j - i) / span
            latency = hub_latency_s + (far_latency_s - hub_latency_s) * frac
            builder.wan(names[i], names[j], latency_s=latency,
                        bandwidth_mbps=wan_bandwidth_mbps)
    return builder.build()

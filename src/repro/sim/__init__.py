"""Discrete-event simulation substrate for VDCE.

The paper's prototype ran on a campus network of workstations.  This
package replaces that testbed with a deterministic, virtual-time
discrete-event simulation: a :class:`~repro.sim.kernel.Simulator` event
kernel, generator-based processes, a resource model (hosts grouped into
sites), a latency/bandwidth network model, background-workload
generators, and failure injection.

Everything the VDCE scheduler and runtime observe on the real testbed —
execution times, transfer times, measured CPU loads, host failures — is
produced by this substrate with controllable ground truth, so every
experiment in EXPERIMENTS.md is exactly reproducible from a seed.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.host import Host, HostSpec, HostState, TaskExecution
from repro.sim.site import Group, Site, SiteSpec
from repro.sim.network import Link, LinkDownError, LinkSpec, Network, TransferModel
from repro.sim.topology import Topology, TopologyBuilder, star_topology, two_site_topology
from repro.sim.workload import (
    ConstantLoad,
    DiurnalLoad,
    LoadGenerator,
    OrnsteinUhlenbeckLoad,
    RandomWalkLoad,
    SpikeLoad,
    TraceLoad,
)
from repro.sim.failures import FailureInjector, FailureEvent
from repro.sim.chaos import ChaosConfig, ChaosReport, run_campaign, smoke_config

__all__ = [
    "AllOf",
    "AnyOf",
    "ChaosConfig",
    "ChaosReport",
    "ConstantLoad",
    "DiurnalLoad",
    "FailureEvent",
    "FailureInjector",
    "Group",
    "Host",
    "HostSpec",
    "HostState",
    "Interrupt",
    "Link",
    "LinkDownError",
    "LinkSpec",
    "LoadGenerator",
    "Network",
    "OrnsteinUhlenbeckLoad",
    "Process",
    "RandomWalkLoad",
    "Signal",
    "SimulationError",
    "Simulator",
    "Site",
    "SiteSpec",
    "SpikeLoad",
    "TaskExecution",
    "Timeout",
    "Topology",
    "TopologyBuilder",
    "TraceLoad",
    "TransferModel",
    "run_campaign",
    "smoke_config",
    "star_topology",
    "two_site_topology",
]

"""Per-flag behaviour equivalence, proven by the determinism oracles.

The contract of every :mod:`repro.perf` flag is strict: a run with the
optimization on must produce byte-identical ``trace_hash`` and metrics
``snapshot_hash`` to the reference (all-off) run — "same behaviour,
faster" as a testable property.  These tests run a full pipeline
(monitoring + distributed scheduling + execution) per configuration
and compare the oracles, per flag, across seeds.
"""

import pytest

import repro.perf as perf
from repro.metrics.registry import MetricsRegistry
from repro.runtime import RuntimeConfig, VDCERuntime
from repro.scheduler import SiteScheduler
from repro.sim import TopologyBuilder
from repro.trace.serialize import trace_hash
from repro.trace.tracer import Tracer
from repro.workloads import RandomDAGConfig, random_dag

SEEDS = (0, 1, 2)


def _run_pipeline(seed: int):
    """One deterministic end-to-end run; returns (trace_hash, metrics_hash).

    Small but wide enough to exercise every flagged path: host indexing
    and Predict memoization in host selection, the commitment ledger in
    the site scheduler's in-round accounting, and the monitor/echo
    bookkeeping batching under active monitoring.
    """
    tracer = Tracer()
    metrics = MetricsRegistry()
    builder = (
        TopologyBuilder(seed=seed)
        .lan_defaults(0.0005, 10.0)
        .wan_defaults(0.03, 2.0)
    )
    speeds = (1.0, 2.0, 4.0)
    for s in range(2):
        builder.site(f"site-{s}", hosts=[
            (f"s{s}-h{h}", speeds[(s + h) % len(speeds)], 256)
            for h in range(3)
        ])
    rt = VDCERuntime(builder.build(), config=RuntimeConfig(),
                     tracer=tracer, metrics=metrics)
    rt.start_monitoring()
    afg = random_dag(RandomDAGConfig(n_tasks=24, width=4, mean_cost=2.0,
                                     ccr=0.4, seed=seed))

    def pipeline():
        table, _sched = yield from rt.schedule_process(
            afg, SiteScheduler(k=1, model=rt.model), local_site="site-0"
        )
        result = yield rt.execute_process(
            afg, table, submit_site="site-0", execute_payloads=False
        )
        return result

    rt.sim.run_until_complete(rt.sim.process(pipeline()))
    rt.export_metrics()
    return trace_hash(tracer.events()), metrics.snapshot_hash()


#: reference (all flags off) oracle pair, computed once per seed
_REFERENCE = {}


def _reference(seed: int):
    if seed not in _REFERENCE:
        with perf.use_flags(**perf.PerfFlags.all_off().as_dict()):
            _REFERENCE[seed] = _run_pipeline(seed)
    return _REFERENCE[seed]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("flag", perf.flag_names())
def test_single_flag_matches_reference(flag, seed):
    """Each optimization alone is behaviour-identical to the reference."""
    ref_trace, ref_metrics = _reference(seed)
    off = perf.PerfFlags.all_off().as_dict()
    off[flag] = True
    with perf.use_flags(**off):
        opt_trace, opt_metrics = _run_pipeline(seed)
    assert opt_trace == ref_trace, (
        f"flag {flag!r} (seed {seed}) changed the event trace"
    )
    assert opt_metrics == ref_metrics, (
        f"flag {flag!r} (seed {seed}) changed the metrics snapshot"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_all_flags_match_reference(seed):
    """The production configuration (everything on) equals the reference."""
    ref_trace, ref_metrics = _reference(seed)
    with perf.use_flags(**perf.PerfFlags().as_dict()):
        opt_trace, opt_metrics = _run_pipeline(seed)
    assert (opt_trace, opt_metrics) == (ref_trace, ref_metrics)


def test_flag_matrix_is_complete():
    """Every PerfFlags field defaults on; all_off turns every one off."""
    on = perf.PerfFlags().as_dict()
    off = perf.PerfFlags.all_off().as_dict()
    assert set(on) == set(off) == set(perf.flag_names())
    assert all(on.values())
    assert not any(off.values())


def test_use_flags_restores_previous():
    before = perf.FLAGS
    with perf.use_flags(predict_cache=False) as flags:
        assert not flags.predict_cache
        assert perf.FLAGS is flags
    assert perf.FLAGS is before

"""Schema versioning: loud failures instead of silent misreads.

Trace JSONL files carry a ``trace_header`` line and metrics snapshots a
``schema_version`` key; both are validated on load, neither changes the
committed hashes (the header is excluded from ``trace_hash``, the key
is stripped before ``snapshot_hash``), and the bench harness refuses to
compare documents across schema generations.
"""

import json

import pytest

from benchmarks import harness
from repro.metrics.export import (
    METRICS_SCHEMA_VERSION,
    load_snapshot,
    registry_snapshot,
    save_snapshot,
    snapshot_hash,
)
from repro.metrics.registry import MetricsRegistry
from repro.trace.events import EventKind
from repro.trace.serialize import (
    TRACE_SCHEMA_VERSION,
    events_to_jsonl,
    parse_jsonl,
    trace_hash,
)
from repro.trace.tracer import Tracer


def _traced() -> Tracer:
    tracer = Tracer()
    tracer.emit(EventKind.TASK_START, source="host-0", task="t1")
    tracer.emit(EventKind.TASK_FINISH, source="host-0", task="t1")
    return tracer


class TestTraceHeader:
    def test_serialised_trace_leads_with_the_header(self):
        first_line = events_to_jsonl(_traced()).splitlines()[0]
        assert json.loads(first_line) == {
            "trace_header": {"schema_version": TRACE_SCHEMA_VERSION}
        }

    def test_round_trip_strips_the_header(self):
        tracer = _traced()
        events = parse_jsonl(events_to_jsonl(tracer))
        assert len(events) == 2
        assert [e.kind for e in events] == [
            EventKind.TASK_START, EventKind.TASK_FINISH
        ]
        assert trace_hash(events) == trace_hash(tracer)

    def test_header_does_not_change_the_trace_hash(self):
        # the hash walks events only; the header is transport framing
        tracer = _traced()
        headerless = "".join(
            line + "\n"
            for line in events_to_jsonl(tracer).splitlines()[1:]
        )
        assert parse_jsonl(headerless)  # legacy files still parse
        assert trace_hash(parse_jsonl(headerless)) == trace_hash(tracer)

    def test_unknown_version_fails_loudly(self):
        bad = json.dumps(
            {"trace_header": {"schema_version": TRACE_SCHEMA_VERSION + 1}}
        )
        with pytest.raises(ValueError, match="schema_version .* not supported"):
            parse_jsonl(bad + "\n")

    def test_missing_version_field_fails_loudly(self):
        with pytest.raises(ValueError, match="not supported"):
            parse_jsonl('{"trace_header": {}}\n')


class TestMetricsSchema:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(3)
        return registry, registry_snapshot(registry)

    def test_snapshot_is_stamped(self):
        _registry, snapshot = self._snapshot()
        assert snapshot["schema_version"] == METRICS_SCHEMA_VERSION

    def test_stamp_does_not_change_the_hash(self):
        _registry, snapshot = self._snapshot()
        unstamped = {
            k: v for k, v in snapshot.items() if k != "schema_version"
        }
        assert snapshot_hash(snapshot) == snapshot_hash(unstamped)

    def test_load_validates_version(self, tmp_path):
        registry, snapshot = self._snapshot()
        path = tmp_path / "metrics.json"
        save_snapshot(registry, str(path))
        assert load_snapshot(str(path)) == snapshot

        snapshot["schema_version"] = METRICS_SCHEMA_VERSION + 1
        path.write_text(json.dumps(snapshot))
        with pytest.raises(ValueError, match="schema_version"):
            load_snapshot(str(path))

    def test_legacy_snapshot_without_stamp_loads(self, tmp_path):
        _registry, snapshot = self._snapshot()
        del snapshot["schema_version"]
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(snapshot))
        assert load_snapshot(str(path))["counters"]


class TestBenchCompare:
    def test_cross_schema_comparison_is_refused(self):
        document = {"schema": harness.SCHEMA, "scenarios": {}}
        foreign = {"schema": harness.SCHEMA + 1, "scenarios": {}}
        problems = harness.compare(foreign, document)
        assert problems and "schema" in problems[0]
        problems = harness.compare(document, foreign)
        assert problems and "schema" in problems[0]

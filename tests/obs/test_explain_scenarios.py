"""End-to-end attribution over the canonical bench scenarios.

The explain determinism oracle: two span-enabled runs of the same
scenario must produce byte-identical attribution reports, every
application's breakdown must sum to its wall time, and the span stream
must satisfy I9 (every open paired with exactly one close/orphan).
Also pins the behaviour-neutrality contract: enabling spans adds span
events and changes nothing else.
"""

import json

import pytest

from benchmarks import harness
from repro.cli import main as cli_main
from repro.obs.attribution import (
    explain,
    report_hash,
    report_to_json,
    span_integrity,
)
from repro.obs.profile import folded_stacks
from repro.trace.events import EventKind

_SPAN_KINDS = (EventKind.SPAN_OPEN, EventKind.SPAN_CLOSE,
               EventKind.SPAN_ORPHAN)


@pytest.mark.parametrize("name", harness.SCENARIO_ORDER)
class TestScenarioAttribution:
    def test_report_is_deterministic(self, name):
        first = explain(harness.run_traced(name, causal_spans=True))
        second = explain(harness.run_traced(name, causal_spans=True))
        assert report_to_json(first) == report_to_json(second)
        assert report_hash(first) == report_hash(second)

    def test_breakdown_sums_to_wall_and_spans_pair_up(self, name):
        events = harness.run_traced(name, causal_spans=True)
        assert span_integrity(events) == []
        report = explain(events)
        assert report["apps"], "scenario produced no application spans"
        for app, info in report["apps"].items():
            assert abs(info["breakdown_residual_s"]) <= 1e-6, app
            # host_selection is scheduler-only: its virtual clock never
            # advances, so a zero wall is legitimate there
            assert info["wall_s"] >= 0.0
            assert info["critical_path"][0]["span"] == "app"
        assert report["integrity"]["violations"] == []

    def test_spans_only_add_events(self, name):
        """Behaviour neutrality: the spans-off event stream is exactly
        the spans-on stream with the span events removed."""
        plain = harness.run_traced(name, causal_spans=False)
        spanned = harness.run_traced(name, causal_spans=True)
        stripped = [e for e in spanned if e.kind not in _SPAN_KINDS]
        assert len(stripped) == len(plain)
        for ours, theirs in zip(stripped, plain):
            assert ours.kind == theirs.kind
            assert ours.time == theirs.time
            assert ours.source == theirs.source
            assert ours.data == theirs.data

    def test_profile_is_stable(self, name):
        events = harness.run_traced(name, causal_spans=True)
        stacks = folded_stacks(events, prefix=name)
        assert all(key.startswith(f"{name};") for key in stacks)
        if name != "host_selection":  # zero virtual time -> zero self time
            assert stacks
        assert folded_stacks(
            harness.run_traced(name, causal_spans=True), prefix=name
        ) == stacks


class TestExplainCli:
    def test_scenario_mode_exits_clean(self, capsys):
        assert cli_main(["explain", "--scenario", "end_to_end"]) == 0
        out = capsys.readouterr().out
        assert "report hash" in out
        assert "execution" in out
        assert "critical path: app" in out

    def test_json_and_hash_outputs_agree(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        hash_path = tmp_path / "hash.json"
        code = cli_main([
            "explain", "--scenario", "host_selection",
            "--json", str(json_path), "--hashes", str(hash_path),
        ])
        assert code == 0
        capsys.readouterr()
        report = json.loads(json_path.read_text())
        digest = json.loads(hash_path.read_text())["report"]
        assert report_hash(report) == digest

    def test_requires_exactly_one_input(self, capsys):
        assert cli_main(["explain"]) == 1
        assert cli_main([
            "explain", "trace.jsonl", "--scenario", "end_to_end"
        ]) == 1
        capsys.readouterr()

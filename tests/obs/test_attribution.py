"""Attribution engine unit tests on hand-built span trees.

A mutable-clock recorder builds small, exactly-known lifecycles; the
tests then pin the forest reconstruction, the elementary-interval
sweep (exact partition + priority), the critical path and the
canonical report hashing.
"""

import math

import pytest

from repro.obs.attribution import (
    ATTRIBUTION_SCHEMA_VERSION,
    CATEGORIES,
    build_forest,
    explain,
    report_hash,
    report_to_json,
    span_integrity,
)
from repro.obs.profile import folded_stacks, format_folded, self_time
from repro.obs.spans import SpanKind, SpanRecorder
from repro.trace.events import EventKind
from repro.trace.tracer import Tracer


def make_recorder():
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0])
    return clock, tracer, SpanRecorder(tracer)


def build_lifecycle():
    """One app, wall 0..10: queue 2s, schedule 1s, then one task with
    stage_in 1s, execute 5s, stage_out 1s.  Every second accounted."""
    clock, tracer, spans = make_recorder()
    root = spans.root_of("app", source="dsm")
    wait = spans.open(SpanKind.ADMISSION_WAIT, "app", parent=root)
    clock[0] = 2.0
    spans.close(wait)
    sched = spans.open(SpanKind.SCHEDULE, "app", parent=root)
    clock[0] = 3.0
    spans.close(sched)
    task = spans.open(SpanKind.TASK, "app", parent=root, task="t1",
                      site="site-0")
    stage = spans.open(SpanKind.STAGE_IN, "app", parent=task)
    clock[0] = 4.0
    spans.close(stage)
    execute = spans.open(SpanKind.EXECUTE, "app", parent=task, host="h0",
                         task="t1")
    clock[0] = 9.0
    spans.close(execute)
    out = spans.open(SpanKind.STAGE_OUT, "app", parent=task)
    clock[0] = 10.0
    spans.close(out)
    spans.close(task)
    spans.close_root("app")
    return tracer.events()


class TestForest:
    def test_tree_reconstruction(self):
        roots = build_forest(build_lifecycle())
        assert len(roots) == 1
        root = roots[0]
        assert root.kind == SpanKind.APP
        assert root.app == "app"
        assert [c.kind for c in root.children] == [
            SpanKind.ADMISSION_WAIT, SpanKind.SCHEDULE, SpanKind.TASK
        ]
        task = root.children[-1]
        assert [c.kind for c in task.children] == [
            SpanKind.STAGE_IN, SpanKind.EXECUTE, SpanKind.STAGE_OUT
        ]
        assert task.attrs["task"] == "t1"
        assert root.duration == 10.0

    def test_children_sorted_by_open_time_then_id(self):
        clock, tracer, spans = make_recorder()
        root = spans.root_of("a")
        second = spans.open(SpanKind.TASK, "a", parent=root, task="b")
        first = spans.open(SpanKind.TASK, "a", parent=root, task="c")
        clock[0] = 1.0
        spans.close(first)
        spans.close(second)
        spans.close_root("a")
        children = build_forest(tracer.events())[0].children
        # same open time: span id breaks the tie
        assert [c.span_id for c in children] == [
            second.span_id, first.span_id
        ]

    def test_unclosed_span_closes_at_trace_end_and_is_flagged(self):
        clock, tracer, spans = make_recorder()
        spans.root_of("a")
        clock[0] = 7.0
        tracer.emit(EventKind.TASK_FINISH, task="t")  # advances trace end
        root = build_forest(tracer.events())[0]
        assert root.unclosed
        assert root.status == "unclosed"
        assert root.close_time == 7.0

    def test_orphan_marks_status_with_reason(self):
        clock, tracer, spans = make_recorder()
        ctx = spans.root_of("a")
        clock[0] = 3.0
        spans.orphan(ctx, reason="ManagerUnavailable")
        root = build_forest(tracer.events())[0]
        assert root.orphaned
        assert root.status == "ManagerUnavailable"
        assert root.close_time == 3.0


class TestIntegrity:
    def test_clean_lifecycle_has_no_violations(self):
        assert span_integrity(build_lifecycle()) == []

    def test_double_open_detected(self):
        tracer = Tracer()
        for _ in range(2):
            tracer.emit(EventKind.SPAN_OPEN, span="task", span_id=1,
                        parent_id=None, application="a")
        assert any("opened twice" in v for v in span_integrity(tracer.events()))

    def test_close_without_open_detected(self):
        tracer = Tracer()
        tracer.emit(EventKind.SPAN_CLOSE, span="task", span_id=9,
                    application="a", status="ok")
        assert span_integrity(tracer.events()) == [
            "span 9 (task) closed without an open"
        ]

    def test_close_after_orphan_detected(self):
        tracer = Tracer()
        tracer.emit(EventKind.SPAN_OPEN, span="task", span_id=1,
                    parent_id=None, application="a")
        tracer.emit(EventKind.SPAN_ORPHAN, span="task", span_id=1,
                    application="a", reason="crash")
        tracer.emit(EventKind.SPAN_CLOSE, span="task", span_id=1,
                    application="a", status="ok")
        assert span_integrity(tracer.events()) == [
            "span 1 (task) closed after already orphaned"
        ]

    def test_never_closed_detected(self):
        tracer = Tracer()
        tracer.emit(EventKind.SPAN_OPEN, span="task", span_id=4,
                    parent_id=None, application="a")
        assert span_integrity(tracer.events()) == [
            "span 4 never closed and never orphan-marked"
        ]


class TestBreakdown:
    def test_every_second_attributed_exactly_once(self):
        report = explain(build_lifecycle())
        info = report["apps"]["app"]
        assert info["wall_s"] == 10.0
        assert info["breakdown"] == {
            "queue": 2.0, "scheduling": 1.0, "staging": 2.0,
            "execution": 5.0, "repair": 0.0, "drain": 0.0, "retry": 0.0,
            "speculation": 0.0, "shed": 0.0, "other": 0.0,
        }
        assert info["breakdown_residual_s"] == 0.0
        assert set(info["breakdown"]) == set(CATEGORIES)

    def test_shed_wait_is_its_own_category(self):
        # an admission wait that ends in load shedding is not "queue"
        # time (the app never ran) — it gets the "shed" category
        clock, tracer, spans = make_recorder()
        root = spans.root_of("a")
        wait = spans.open(SpanKind.ADMISSION_WAIT, "a", parent=root)
        clock[0] = 3.0
        spans.close(wait, status="shed")
        spans.close_root("a", status="shed")
        breakdown = explain(tracer.events())["apps"]["a"]["breakdown"]
        assert breakdown["shed"] == 3.0
        assert breakdown["queue"] == 0.0

    def test_expired_wait_counts_as_shed(self):
        clock, tracer, spans = make_recorder()
        root = spans.root_of("a")
        wait = spans.open(SpanKind.ADMISSION_WAIT, "a", parent=root)
        clock[0] = 2.0
        spans.close(wait, status="expired")
        spans.close_root("a", status="expired")
        breakdown = explain(tracer.events())["apps"]["a"]["breakdown"]
        assert breakdown["shed"] == 2.0
        assert breakdown["queue"] == 0.0

    def test_gaps_fall_into_other(self):
        clock, tracer, spans = make_recorder()
        root = spans.root_of("a")
        execute = spans.open(SpanKind.EXECUTE, "a", parent=root)
        clock[0] = 4.0
        spans.close(execute)
        clock[0] = 6.0  # 2s of nothing before the root closes
        spans.close_root("a")
        breakdown = explain(tracer.events())["apps"]["a"]["breakdown"]
        assert breakdown["execution"] == 4.0
        assert breakdown["other"] == 2.0

    def test_overlap_resolved_by_priority(self):
        # execute (priority 1) overlaps speculate_backup entirely: the
        # speculation category gets only its uncovered tail
        clock, tracer, spans = make_recorder()
        root = spans.root_of("a")
        execute = spans.open(SpanKind.EXECUTE, "a", parent=root)
        clock[0] = 2.0
        backup = spans.open(SpanKind.SPECULATE_BACKUP, "a", parent=root)
        clock[0] = 5.0
        spans.close(execute)
        clock[0] = 6.0
        spans.close(backup)
        spans.close_root("a")
        breakdown = explain(tracer.events())["apps"]["a"]["breakdown"]
        assert breakdown["execution"] == 5.0
        assert breakdown["speculation"] == 1.0

    def test_sums_match_wall_on_irregular_floats(self):
        # adversarial boundaries: irrational-ish floats must still
        # partition the window exactly up to float associativity
        clock, tracer, spans = make_recorder()
        root = spans.root_of("a")
        t = 0.0
        for i, kind in enumerate((SpanKind.STAGE_IN, SpanKind.EXECUTE,
                                  SpanKind.RETRY_BACKOFF) * 3):
            ctx = spans.open(kind, "a", parent=root)
            t += math.sqrt(2 + i) / 3
            clock[0] = t
            spans.close(ctx)
        clock[0] = t + 0.1
        spans.close_root("a")
        info = explain(tracer.events())["apps"]["a"]
        assert abs(info["breakdown_residual_s"]) <= 1e-9
        assert abs(sum(info["breakdown"].values()) - info["wall_s"]) <= 1e-9

    def test_two_windows_sum_their_walls(self):
        # a checkpoint-restarted app: two roots, one application
        clock, tracer, spans = make_recorder()
        first = spans.root_of("a")
        clock[0] = 3.0
        spans.abandon_app("a", reason="crash")
        clock[0] = 5.0
        spans.root_of("a")
        clock[0] = 9.0
        spans.close_root("a")
        info = explain(tracer.events())["apps"]["a"]
        assert info["windows"] == 2
        assert info["wall_s"] == 3.0 + 4.0
        assert first.span_id  # silence unused warning


class TestCriticalPath:
    def test_path_follows_last_closing_child(self):
        path = explain(build_lifecycle())["apps"]["app"]["critical_path"]
        assert [p["span"] for p in path] == [
            SpanKind.APP, SpanKind.TASK, SpanKind.STAGE_OUT
        ]
        assert path[1]["task"] == "t1"

    def test_tie_broken_by_smaller_span_id(self):
        clock, tracer, spans = make_recorder()
        root = spans.root_of("a")
        first = spans.open(SpanKind.TASK, "a", parent=root, task="first")
        second = spans.open(SpanKind.TASK, "a", parent=root, task="second")
        clock[0] = 4.0
        spans.close(first)
        spans.close(second)
        spans.close_root("a")
        path = explain(tracer.events())["apps"]["a"]["critical_path"]
        assert path[1]["task"] == "first"
        assert path[1]["span_id"] == first.span_id


class TestReport:
    def test_top_hosts_aggregate_execute_time(self):
        report = explain(build_lifecycle())
        assert report["top_hosts"] == [{"host": "h0", "execute_s": 5.0}]

    def test_schema_version_stamped(self):
        report = explain(build_lifecycle())
        assert report["schema_version"] == ATTRIBUTION_SCHEMA_VERSION

    def test_canonical_json_and_hash_are_stable(self):
        a, b = explain(build_lifecycle()), explain(build_lifecycle())
        assert report_to_json(a) == report_to_json(b)
        assert report_hash(a) == report_hash(b)
        assert report_to_json(a).endswith("\n")

    def test_negative_zero_normalised(self):
        assert '-0.0' not in report_to_json(
            {"x": -0.0, "nested": [{"y": -1e-15}]}
        )

    def test_top_k_limits_tasks(self):
        clock, tracer, spans = make_recorder()
        root = spans.root_of("a")
        for i in range(8):
            ctx = spans.open(SpanKind.TASK, "a", parent=root, task=f"t{i}")
            clock[0] += 1.0
            spans.close(ctx)
        spans.close_root("a")
        report = explain(tracer.events(), top=3)
        info = report["apps"]["a"]
        assert len(info["top_tasks"]) == 3
        assert len(info["tasks"]) == 8
        walls = [t["wall_s"] for t in info["top_tasks"]]
        assert walls == sorted(walls, reverse=True)


class TestProfile:
    def test_self_time_subtracts_child_union(self):
        root = build_forest(build_lifecycle())[0]
        # root 0..10 fully covered by children except nothing: children
        # cover 0..3 (wait+sched) and 3..10 (task) -> self 0
        assert self_time(root) == 0.0
        task = root.children[-1]
        # task 3..10, children cover 3..10 contiguously -> self 0
        assert self_time(task) == 0.0
        execute = task.children[1]
        assert self_time(execute) == 5.0

    def test_folded_stacks_total_matches_wall(self):
        events = build_lifecycle()
        stacks = folded_stacks(events, prefix="bench")
        assert all(key.startswith("bench;app:app") for key in stacks)
        assert sum(stacks.values()) == pytest.approx(10e6)  # 10 s in µs
        assert "bench;app:app;task:t1;execute" in stacks

    def test_format_is_sorted_collapsed_stack_lines(self):
        text = format_folded(folded_stacks(build_lifecycle()))
        lines = text.splitlines()
        assert lines == sorted(lines)
        for line in lines:
            frames, value = line.rsplit(" ", 1)
            assert frames
            assert int(value) > 0

"""SpanRecorder unit tests: pairing, orphaning, the null object."""

from repro.obs.attribution import span_integrity
from repro.obs.spans import (
    NULL_SPAN,
    NULL_SPANS,
    NullSpanRecorder,
    SpanKind,
    SpanRecorder,
)
from repro.trace.events import EventKind
from repro.trace.tracer import Tracer


def make_recorder():
    """A recorder on a tracer with a directly settable clock."""
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0])
    return clock, tracer, SpanRecorder(tracer)


def span_events(tracer):
    kinds = (EventKind.SPAN_OPEN, EventKind.SPAN_CLOSE, EventKind.SPAN_ORPHAN)
    return [e for e in tracer.events() if e.kind in kinds]


class TestPairing:
    def test_open_close_emits_paired_events(self):
        clock, tracer, spans = make_recorder()
        ctx = spans.open(SpanKind.SCHEDULE, "app-1", source="gm:site-0")
        clock[0] = 2.5
        spans.close(ctx, source="gm:site-0", status="ok")
        opened, closed = span_events(tracer)
        assert opened.kind == EventKind.SPAN_OPEN
        assert opened.data["span"] == SpanKind.SCHEDULE
        assert opened.data["span_id"] == ctx.span_id
        assert opened.data["application"] == "app-1"
        assert opened.data["parent_id"] is None
        assert closed.kind == EventKind.SPAN_CLOSE
        assert closed.data["span_id"] == ctx.span_id
        assert closed.data["status"] == "ok"
        assert closed.time == 2.5

    def test_parent_linkage(self):
        _clock, tracer, spans = make_recorder()
        parent = spans.open(SpanKind.APP, "a")
        child = spans.open(SpanKind.TASK, "a", parent=parent)
        events = span_events(tracer)
        assert events[1].data["parent_id"] == parent.span_id
        assert child.span_id != parent.span_id

    def test_null_parent_means_root(self):
        _clock, tracer, spans = make_recorder()
        spans.open(SpanKind.TASK, "a", parent=NULL_SPAN)
        assert span_events(tracer)[0].data["parent_id"] is None

    def test_close_is_idempotent(self):
        _clock, tracer, spans = make_recorder()
        ctx = spans.open(SpanKind.RPC, "a")
        spans.close(ctx)
        spans.close(ctx)  # late duplicate: silent no-op
        assert len(span_events(tracer)) == 2
        assert span_integrity(tracer.events()) == []

    def test_close_after_orphan_is_a_noop(self):
        _clock, tracer, spans = make_recorder()
        ctx = spans.open(SpanKind.EXECUTE, "a")
        spans.orphan(ctx, reason="crash")
        spans.close(ctx)
        events = span_events(tracer)
        assert [e.kind for e in events] == [
            EventKind.SPAN_OPEN, EventKind.SPAN_ORPHAN
        ]
        assert events[1].data["reason"] == "crash"
        assert span_integrity(tracer.events()) == []

    def test_span_ids_are_deterministic(self):
        _c1, _t1, a = make_recorder()
        _c2, _t2, b = make_recorder()
        ids_a = [a.open(SpanKind.TASK, "x").span_id for _ in range(3)]
        ids_b = [b.open(SpanKind.TASK, "x").span_id for _ in range(3)]
        assert ids_a == ids_b == [1, 2, 3]


class TestRoots:
    def test_root_is_created_lazily_and_shared(self):
        _clock, tracer, spans = make_recorder()
        first = spans.root_of("app-1", source="dsm")
        second = spans.root_of("app-1")
        assert first is second
        assert len(span_events(tracer)) == 1

    def test_close_root_is_idempotent(self):
        _clock, tracer, spans = make_recorder()
        spans.root_of("app-1")
        spans.close_root("app-1", status="ok")
        spans.close_root("app-1")
        assert len(span_events(tracer)) == 2
        assert span_integrity(tracer.events()) == []

    def test_abandon_app_orphans_only_that_app(self):
        _clock, tracer, spans = make_recorder()
        root = spans.root_of("dead")
        spans.open(SpanKind.TASK, "dead", parent=root)
        alive = spans.open(SpanKind.TASK, "alive")
        spans.abandon_app("dead", reason="ManagerUnavailable")
        orphans = [
            e for e in span_events(tracer) if e.kind == EventKind.SPAN_ORPHAN
        ]
        assert len(orphans) == 2
        assert all(e.data["application"] == "dead" for e in orphans)
        assert alive.span_id in spans.open_spans
        # a restart of the same application gets a *fresh* root window
        assert spans.root_of("dead").span_id != root.span_id

    def test_orphan_all_clears_everything(self):
        _clock, tracer, spans = make_recorder()
        spans.root_of("a")
        spans.open(SpanKind.TASK, "b")
        spans.orphan_all(reason="campaign_end")
        assert spans.open_spans == {}
        assert span_integrity(tracer.events()) == []


class TestAmbientContext:
    def test_push_pop_current(self):
        _clock, _tracer, spans = make_recorder()
        assert spans.current is None
        outer = spans.open(SpanKind.RPC, "a")
        spans.push(outer)
        inner = spans.open(SpanKind.RPC_ATTEMPT, "a", parent=outer)
        spans.push(inner)
        assert spans.current is inner
        spans.pop()
        assert spans.current is outer
        spans.pop()
        assert spans.current is None


class TestNullRecorder:
    def test_disabled_recorder_is_inert(self):
        assert not NULL_SPANS.enabled
        ctx = NULL_SPANS.open(SpanKind.TASK, "a")
        assert ctx is NULL_SPAN
        assert NULL_SPANS.root_of("a") is NULL_SPAN
        NULL_SPANS.close(ctx)
        NULL_SPANS.orphan(ctx, reason="x")
        NULL_SPANS.close_root("a")
        NULL_SPANS.abandon_app("a", reason="x")
        NULL_SPANS.orphan_all(reason="x")
        NULL_SPANS.push(ctx)
        NULL_SPANS.pop()
        assert NULL_SPANS.current is None
        assert NULL_SPANS.open_spans == {}

    def test_null_recorder_is_a_span_recorder(self):
        # call sites type against SpanRecorder; the null object must
        # substitute everywhere
        assert isinstance(NullSpanRecorder(), SpanRecorder)

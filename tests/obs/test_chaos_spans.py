"""Chaos invariant I9 and event attribution under faults.

I9 — every span opened during a campaign is closed exactly once or
explicitly orphan-marked — is audited by ``run_campaign`` itself when
``causal_spans`` is on; these tests run it across the fault families
(link faults + partition, manager crashes, slowdowns + speculation)
and three seeds each.

The attribution audit pins the ownership contract on lifecycle events:
SPECULATE/SPECULATE_WIN/SPECULATE_CANCEL name the application and task
they act for, FAILOVER/MANAGER_CRASH/MANAGER_RECOVER name the manager,
QUARANTINE carries the ``origin`` whose penalty tipped the score, and
RESUME names the resumed application — so ``repro explain`` can answer
"who caused this?" from the trace alone.
"""

from dataclasses import replace

import pytest

from repro.obs.attribution import explain, span_integrity
from repro.runtime.checkpoint import create_checkpoint_dir, resume_run
from repro.runtime import RuntimeConfig
from repro.runtime.straggler import HealthPolicy, HostHealth
from repro.scheduler import SiteScheduler
from repro.sim.chaos import (
    ChaosConfig,
    run_campaign,
    slowdown_smoke_config,
    smoke_config,
)
from repro.sim.kernel import Simulator
from repro.trace.events import EventKind
from repro.trace.serialize import read_jsonl
from repro.trace.tracer import Tracer
from repro.workloads import linear_pipeline
from repro import VDCE

SEEDS = (0, 1, 2)


def link_fault_config(seed: int) -> ChaosConfig:
    return replace(smoke_config(seed), causal_spans=True)


def manager_crash_config(seed: int) -> ChaosConfig:
    return replace(
        smoke_config(seed), gm_crash_at_s=70.0, sm_crash_at_s=100.0,
        causal_spans=True,
    )


def slowdown_config(seed: int) -> ChaosConfig:
    return replace(slowdown_smoke_config(seed), causal_spans=True)


#: the audit campaign: crashes + slowdowns + speculation in 3 apps,
#: tuned so failover, manager crash/recover and all three speculation
#: outcomes all occur (checked below, so drift is caught)
AUDIT_CONFIG = ChaosConfig(
    seed=1, n_sites=3, hosts_per_site=3, n_apps=3, duration_s=240.0,
    app_spacing_s=35.0, n_flaky_hosts=1, n_flaky_links=0,
    partition_at_s=None, gm_crash_at_s=70.0, sm_crash_at_s=100.0,
    n_slow_hosts=6, slowdown_at_s=20.0, slowdown_duration_s=90.0,
    slowdown_factor=8.0, n_flapping_hosts=2, detector="phi",
    speculation=True, health=True, causal_spans=True,
    message_loss_prob=0.02, echo_loss_prob=0.02,
)


class TestI9AcrossFaultFamilies:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("make_config", (
        link_fault_config, manager_crash_config, slowdown_config,
    ), ids=("link-faults", "manager-crashes", "slowdowns"))
    def test_campaign_spans_balance(self, make_config, seed):
        report = run_campaign(make_config(seed))
        assert report.ok, report.violations
        assert not any(v.startswith("I9:") for v in report.violations)

    def test_i9_actually_audits(self, tmp_path):
        """The campaign trace independently satisfies the I9 oracle."""
        path = tmp_path / "trace.jsonl"
        report = run_campaign(link_fault_config(0), trace_path=str(path))
        assert report.ok, report.violations
        events = read_jsonl(str(path))
        assert any(e.kind == EventKind.SPAN_OPEN for e in events)
        assert span_integrity(events) == []


class TestEventAttributionAudit:
    @pytest.fixture(scope="class")
    def campaign_events(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("audit") / "trace.jsonl"
        report = run_campaign(AUDIT_CONFIG, trace_path=str(path))
        assert report.ok, report.violations
        return read_jsonl(str(path))

    def test_campaign_reaches_all_audited_events(self, campaign_events):
        kinds = {e.kind for e in campaign_events}
        assert {EventKind.FAILOVER, EventKind.MANAGER_CRASH,
                EventKind.MANAGER_RECOVER, EventKind.SPECULATE,
                EventKind.SPECULATE_WIN,
                EventKind.SPECULATE_CANCEL} <= kinds

    def test_speculation_events_name_app_and_task(self, campaign_events):
        for event in campaign_events:
            if event.kind in (EventKind.SPECULATE, EventKind.SPECULATE_WIN,
                              EventKind.SPECULATE_CANCEL):
                assert event.source.startswith("app:"), event
                assert event.data.get("task"), event

    def test_manager_events_name_the_manager(self, campaign_events):
        for event in campaign_events:
            if event.kind in (EventKind.FAILOVER, EventKind.MANAGER_CRASH,
                              EventKind.MANAGER_RECOVER):
                assert event.source.startswith(("gm:", "sm:")), event

    def test_span_events_name_the_application(self, campaign_events):
        for event in campaign_events:
            if event.kind in (EventKind.SPAN_OPEN, EventKind.SPAN_CLOSE,
                              EventKind.SPAN_ORPHAN):
                assert "application" in event.data, event

    def test_explain_attributes_the_campaign(self, campaign_events):
        report = explain(campaign_events)
        assert report["integrity"]["violations"] == []
        assert report["apps"]
        total_speculation = sum(
            info["breakdown"]["speculation"] + info["breakdown"]["execution"]
            for info in report["apps"].values()
        )
        assert total_speculation > 0.0


class TestQuarantineOrigin:
    def test_quarantine_carries_the_tipping_origin(self):
        sim, tracer = Simulator(), Tracer()
        health = HostHealth(sim, HealthPolicy(quarantine_threshold=2.0),
                            tracer=tracer)
        health.penalize("h0", 1.0, "straggle", origin="gm:site-0")
        health.penalize("h0", 1.5, "straggle", origin="app:mapreduce")
        events = [e for e in tracer.events()
                  if e.kind == EventKind.QUARANTINE]
        assert len(events) == 1
        assert events[0].data["origin"] == "app:mapreduce"
        assert events[0].data["host"] == "h0"

    def test_origin_defaults_to_health(self):
        sim, tracer = Simulator(), Tracer()
        health = HostHealth(sim, HealthPolicy(quarantine_threshold=1.0),
                            tracer=tracer)
        health.penalize("h0", 2.0, "failure")
        [event] = [e for e in tracer.events()
                   if e.kind == EventKind.QUARANTINE]
        assert event.data["origin"] == "health"


class TestResumeAttribution:
    def test_resume_event_and_span_name_the_application(self, tmp_path):
        env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=11)
        afg = linear_pipeline(n_stages=5, cost=4.0, edge_mb=1.0)
        journal = create_checkpoint_dir(env, str(tmp_path))
        table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
        env.runtime.execute_process(afg, table, journal=journal)
        env.sim.run(until=5.0)  # the crash
        env.save_repositories(str(tmp_path / "repos"))

        tracer = Tracer()
        _env2, result = resume_run(
            str(tmp_path), tracer=tracer,
            runtime_config=RuntimeConfig(causal_spans=True),
        )
        assert result.records
        events = tracer.events()
        [resume_event] = [e for e in events if e.kind == EventKind.RESUME]
        assert resume_event.source == f"app:{afg.name}"
        assert resume_event.data["completed"] >= 0
        assert span_integrity(events) == []
        resume_spans = [
            e for e in events
            if e.kind == EventKind.SPAN_OPEN and e.data["span"] == "resume"
        ]
        assert len(resume_spans) == 1
        assert resume_spans[0].data["application"] == afg.name
        # explain sees the resumed incarnation as one window
        report = explain(events)
        assert report["apps"][afg.name]["windows"] == 1

"""Property-based tests: DSM sequential consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.dsm import DSM

from tests.runtime.conftest import build_runtime

HOSTS = ["a1", "a2", "b1", "b2"]

# an op is (kind, host_index, value)
ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "fetch_add"]),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=-100, max_value=100),
    ),
    min_size=1,
    max_size=25,
)


@given(ops)
@settings(max_examples=50, deadline=None)
def test_single_threaded_program_order_consistency(op_list):
    """A single process issuing ops sees exactly its own program order:
    every read returns the most recently written value."""
    rt = build_runtime()
    dsm = DSM(rt.sim, rt.topology.network)
    dsm.allocate("x", "a1", initial=0)

    def program():
        expected = 0
        for kind, host_index, value in op_list:
            host = HOSTS[host_index]
            if kind == "write":
                yield from dsm.write("x", value, host)
                expected = value
            elif kind == "fetch_add":
                got = yield from dsm.fetch_add("x", value, host)
                expected = expected + value
                assert got == expected
            else:
                got = yield from dsm.read("x", host)
                assert got == expected, (
                    f"stale read: got {got}, expected {expected}"
                )
        return expected

    final = rt.sim.run_until_complete(rt.sim.process(program()))

    def check_final():
        value = yield from dsm.read("x", "b2")
        return value

    assert rt.sim.run_until_complete(rt.sim.process(check_final())) == final


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=16))
@settings(max_examples=40, deadline=None)
def test_concurrent_fetch_add_is_linearizable(host_indices):
    """N concurrent unit increments from arbitrary hosts total exactly N."""
    rt = build_runtime()
    dsm = DSM(rt.sim, rt.topology.network)
    dsm.allocate("counter", "a2", initial=0)

    def incrementer(host):
        yield from dsm.fetch_add("counter", 1, host)

    procs = [rt.sim.process(incrementer(HOSTS[i])) for i in host_indices]

    def waiter():
        for p in procs:
            yield p
        value = yield from dsm.read("counter", "a1")
        return value

    total = rt.sim.run_until_complete(rt.sim.process(waiter()))
    assert total == len(host_indices)


@given(ops)
@settings(max_examples=30, deadline=None)
def test_stats_accounting_consistent(op_list):
    rt = build_runtime()
    dsm = DSM(rt.sim, rt.topology.network)
    dsm.allocate("x", "a1", initial=0)

    def program():
        for kind, host_index, value in op_list:
            host = HOSTS[host_index]
            if kind == "write":
                yield from dsm.write("x", value, host)
            elif kind == "fetch_add":
                yield from dsm.fetch_add("x", value, host)
            else:
                yield from dsm.read("x", host)

    rt.sim.run_until_complete(rt.sim.process(program()))
    reads = sum(1 for k, _, _ in op_list if k == "read")
    assert dsm.stats.reads == reads
    assert dsm.stats.read_hits + dsm.stats.read_misses == dsm.stats.reads
    writes = sum(1 for k, _, _ in op_list if k in ("write", "fetch_add"))
    assert dsm.stats.writes == writes

"""Property-based tests: discrete-event kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Timeout

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
delays = st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                   allow_infinity=False)


@given(st.lists(times, min_size=1, max_size=50))
def test_callbacks_fire_in_nondecreasing_time_order(schedule_times):
    sim = Simulator()
    fired = []
    for t in schedule_times:
        sim.call_at(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert len(fired) == len(schedule_times)
    assert fired == sorted(fired)
    assert sim.now == max(schedule_times)


@given(st.lists(delays, min_size=1, max_size=30))
def test_sequential_timeouts_sum_exactly(delay_list):
    sim = Simulator()

    def proc():
        for d in delay_list:
            yield Timeout(d)
        return sim.now

    final = sim.run_until_complete(sim.process(proc()))
    assert final == sum(delay_list) or abs(final - sum(delay_list)) < 1e-6


@given(st.lists(st.tuples(times, delays), min_size=1, max_size=20))
def test_interleaved_processes_all_complete(specs):
    sim = Simulator()
    done = []

    def proc(start, duration, index):
        yield Timeout(start)
        yield Timeout(duration)
        done.append(index)

    procs = [sim.process(proc(s, d, i)) for i, (s, d) in enumerate(specs)]
    sim.run()
    assert sorted(done) == list(range(len(specs)))
    assert all(p.triggered for p in procs)


@given(st.integers(min_value=0, max_value=2**32 - 1), st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible(seed, name):
    a = Simulator(seed=seed).rng(name).random(3)
    b = Simulator(seed=seed).rng(name).random(3)
    assert list(a) == list(b)


@given(st.lists(times, min_size=1, max_size=30), times)
def test_run_until_boundary(schedule_times, boundary):
    sim = Simulator()
    fired = []
    for t in schedule_times:
        sim.call_at(t, lambda t=t: fired.append(t))
    sim.run(until=boundary)
    assert sorted(fired) == sorted(t for t in schedule_times if t <= boundary)

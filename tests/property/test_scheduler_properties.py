"""Property-based tests: scheduler output invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import (
    HEFTScheduler,
    MinMinScheduler,
    RandomScheduler,
    SiteScheduler,
    estimate_schedule,
)
from repro.workloads import RandomDAGConfig, random_dag

from tests.scheduler.conftest import build_federation

small_dags = st.builds(
    RandomDAGConfig,
    n_tasks=st.integers(min_value=1, max_value=25),
    width=st.integers(min_value=1, max_value=5),
    max_fan_in=st.integers(min_value=1, max_value=3),
    mean_cost=st.floats(min_value=0.5, max_value=5.0),
    cost_heterogeneity=st.floats(min_value=0.0, max_value=0.8),
    ccr=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)

scheduler_factories = st.sampled_from([
    lambda: SiteScheduler(k=1),
    lambda: SiteScheduler(k=0),
    lambda: SiteScheduler(k=1, use_level_priority=False),
    lambda: MinMinScheduler(),
    lambda: HEFTScheduler(),
    lambda: RandomScheduler(seed=7),
])


@given(small_dags, scheduler_factories)
@settings(max_examples=50, deadline=None)
def test_every_table_is_complete_and_well_formed(config, factory):
    _, repos, view = build_federation()
    afg = random_dag(config)
    table = factory().schedule(afg, view)
    table.validate_against(afg)
    known_hosts = {
        r.name
        for repo in repos.values()
        for r in repo.resources.all_hosts()
    }
    for assignment in table.assignments.values():
        assert assignment.predicted_time >= 0
        assert set(assignment.hosts) <= known_hosts
        # the site recorded must actually own the hosts
        site_repo = repos[assignment.site]
        for host in assignment.hosts:
            assert site_repo.resources.has_host(host)


@given(small_dags)
@settings(max_examples=40, deadline=None)
def test_vdce_schedule_is_deterministic(config):
    _, _, view = build_federation()
    afg = random_dag(config)
    t1 = SiteScheduler(k=1).schedule(afg, view).to_dict()
    t2 = SiteScheduler(k=1).schedule(afg, view).to_dict()
    assert t1 == t2


@given(small_dags)
@settings(max_examples=40, deadline=None)
def test_estimate_respects_precedence_and_durations(config):
    _, _, view = build_federation()
    afg = random_dag(config)
    table = SiteScheduler(k=1).schedule(afg, view)
    est = estimate_schedule(
        afg, table,
        lambda src, dst, mb: view.site_transfer_time(src.site, dst.site, mb),
    )
    for task_id, assignment in table.assignments.items():
        assert est.finish[task_id] == pytest.approx(
            est.start[task_id] + assignment.predicted_time
        )
    for edge in afg.edges:
        assert est.start[edge.dst] >= est.finish[edge.src] - 1e-9
    assert est.makespan == pytest.approx(max(est.finish.values()))


@given(small_dags)
@settings(max_examples=25, deadline=None)
def test_simulated_execution_respects_precedence(config):
    """The runtime never starts a task before its parents finished."""
    from tests.runtime.conftest import build_runtime

    rt = build_runtime()
    afg = random_dag(config)
    table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=False)
    )
    for edge in afg.edges:
        parent = result.records[edge.src]
        child = result.records[edge.dst]
        assert child.started_at >= parent.finished_at - 1e-9
    # lower bound: the heaviest single task on the fastest host
    max_speed = max(h.spec.speed for h in rt.topology.all_hosts)
    heaviest = max(t.properties.workload_scale for t in afg)
    assert result.makespan >= heaviest / max_speed - 1e-9

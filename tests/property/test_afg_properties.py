"""Property-based tests: AFG structure, levels and serialisation."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afg import (
    afg_from_dict,
    afg_from_json,
    afg_to_dict,
    afg_to_json,
    compute_levels,
    priority_order,
    validate_afg,
)
from repro.workloads import RandomDAGConfig, random_dag

dag_configs = st.builds(
    RandomDAGConfig,
    n_tasks=st.integers(min_value=1, max_value=40),
    width=st.integers(min_value=1, max_value=6),
    max_fan_in=st.integers(min_value=1, max_value=4),
    mean_cost=st.floats(min_value=0.1, max_value=10.0),
    cost_heterogeneity=st.floats(min_value=0.0, max_value=0.9),
    ccr=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(min_value=0, max_value=10_000),
)


@given(dag_configs)
@settings(max_examples=60, deadline=None)
def test_random_dags_are_structurally_valid(config):
    from repro.tasklib import default_registry

    afg = random_dag(config)
    assert len(afg) == config.n_tasks
    assert validate_afg(afg, registry=default_registry()) == []
    assert afg.is_acyclic()
    # every non-entry task has all input ports fed
    for task in afg:
        fed = {e.dst_port for e in afg.in_edges(task.id)}
        assert fed == set(range(task.n_in_ports))


@given(dag_configs)
@settings(max_examples=60, deadline=None)
def test_serialisation_roundtrip_is_exact(config):
    afg = random_dag(config)
    assert afg_to_dict(afg_from_dict(afg_to_dict(afg))) == afg_to_dict(afg)
    assert afg_to_dict(afg_from_json(afg_to_json(afg))) == afg_to_dict(afg)


@given(dag_configs)
@settings(max_examples=40, deadline=None)
def test_levels_match_networkx_longest_path(config):
    """Level(t) == longest node-weighted path from t to any exit."""
    afg = random_dag(config)

    def cost(task_id):
        return afg.task(task_id).properties.workload_scale

    levels = compute_levels(afg, cost)

    g = afg.to_networkx()
    # longest path ending computation via reverse topological DP
    expected = {}
    for task_id in reversed(list(nx.topological_sort(g))):
        best_child = max(
            (expected[c] for c in g.successors(task_id)), default=0.0
        )
        expected[task_id] = cost(task_id) + best_child
    for task_id in levels:
        assert levels[task_id] == pytest.approx(expected[task_id])


@given(dag_configs)
@settings(max_examples=40, deadline=None)
def test_priority_order_is_topologically_safe_for_chains(config):
    """A parent's level is strictly above any descendant's (positive costs),
    so the priority order never schedules a descendant before an ancestor."""
    afg = random_dag(config)
    order = priority_order(afg, lambda t: afg.task(t).properties.workload_scale)
    position = {t: i for i, t in enumerate(order)}
    for edge in afg.edges:
        assert position[edge.src] < position[edge.dst]


@given(dag_configs)
@settings(max_examples=40, deadline=None)
def test_topological_order_respects_all_edges(config):
    afg = random_dag(config)
    order = afg.topological_order()
    position = {t: i for i, t in enumerate(order)}
    for edge in afg.edges:
        assert position[edge.src] < position[edge.dst]

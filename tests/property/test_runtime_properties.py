"""Property-based tests: runtime protocol accounting invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import SiteScheduler
from repro.workloads import RandomDAGConfig, random_dag

from tests.runtime.conftest import build_runtime

small_dags = st.builds(
    RandomDAGConfig,
    n_tasks=st.integers(min_value=1, max_value=20),
    width=st.integers(min_value=1, max_value=5),
    max_fan_in=st.integers(min_value=1, max_value=3),
    mean_cost=st.floats(min_value=0.2, max_value=4.0),
    ccr=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=500),
)


@given(small_dags)
@settings(max_examples=40, deadline=None)
def test_protocol_counters_match_graph_structure(config):
    """Without failures, the Data Manager's message bill is exact:

    * one channel setup + one ack per AFG edge;
    * one startup signal;
    * one data transfer per edge (no file inputs, no re-staging);
    * one task-performance refinement per task.
    """
    rt = build_runtime()
    afg = random_dag(config)
    table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=False)
    )
    n_edges = len(afg.edges)
    assert rt.stats.channel_setups == n_edges
    assert rt.stats.channel_acks == n_edges
    assert rt.stats.startup_signals == 1
    assert rt.stats.data_transfers == n_edges
    assert rt.stats.data_transferred_mb == pytest.approx(
        sum(e.size_mb for e in afg.edges)
    )
    assert rt.stats.taskperf_updates == len(afg)
    assert result.reschedules == 0
    assert rt.stats.reschedule_requests == 0


@given(small_dags)
@settings(max_examples=30, deadline=None)
def test_makespan_bounds(config):
    """Makespan is bounded below by the slowest single slice and above
    by fully serial execution on the slowest host plus all transfers."""
    rt = build_runtime()
    afg = random_dag(config)
    table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=False)
    )
    speeds = {h.name: h.spec.speed for h in rt.topology.all_hosts}
    # lower bound: each task ran somewhere; the longest (work / its
    # host's speed) is a hard floor
    floor = max(
        afg.task(t).properties.workload_scale / speeds[r.hosts[0]]
        for t, r in result.records.items()
    )
    assert result.makespan >= floor - 1e-9
    # upper bound: all work serial on the slowest host + generous
    # transfer allowance
    slowest = min(speeds.values())
    total_work = sum(t.properties.workload_scale for t in afg)
    transfer_allowance = sum(
        0.2 + e.size_mb / 1.0 for e in afg.edges
    )  # worst link: 2 MB/s WAN with latency, doubled for safety
    ceiling = total_work / slowest + 2 * transfer_allowance + 1.0
    assert result.makespan <= ceiling


@given(small_dags, st.integers(min_value=0, max_value=1))
@settings(max_examples=30, deadline=None)
def test_execution_is_deterministic(config, k):
    def run():
        rt = build_runtime()
        afg = random_dag(config)
        table = SiteScheduler(k=k).schedule(afg, rt.federation_view())
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )
        return (
            result.makespan,
            tuple(sorted((t, r.hosts) for t, r in result.records.items())),
        )

    assert run() == run()

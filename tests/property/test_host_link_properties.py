"""Property-based tests: processor-sharing conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Host, HostSpec, LinkSpec, Simulator
from repro.sim.network import Link

works = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)
speeds = st.floats(min_value=0.1, max_value=8.0, allow_nan=False)
arrivals = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
sizes = st.floats(min_value=0.001, max_value=50.0, allow_nan=False)


@given(st.lists(st.tuples(arrivals, works), min_size=1, max_size=12), speeds)
@settings(max_examples=60, deadline=None)
def test_work_conservation_on_idle_host(jobs, speed):
    """sum(work) == speed x busy_time: processor sharing loses nothing."""
    sim = Simulator()
    host = Host(sim, HostSpec(name="h", speed=speed))
    executions = []

    def submit(work):
        executions.append(host.execute(work=work))

    for arrival, work in jobs:
        sim.call_at(arrival, lambda w=work: submit(w))
    sim.run()
    assert all(e.done.triggered for e in executions)
    total_work = sum(w for _, w in jobs)
    assert host.busy_time * speed == pytest.approx(total_work, rel=1e-6)
    assert host.completed_count == len(jobs)


@given(st.lists(works, min_size=1, max_size=10), speeds)
@settings(max_examples=60, deadline=None)
def test_no_execution_beats_its_solo_time(work_list, speed):
    """Sharing can only slow a task down: elapsed >= work / speed."""
    sim = Simulator()
    host = Host(sim, HostSpec(name="h", speed=speed))
    executions = [host.execute(work=w) for w in work_list]
    sim.run()
    for execution, work in zip(executions, work_list):
        assert execution.elapsed >= work / speed - 1e-9


@given(st.lists(works, min_size=2, max_size=8), speeds)
@settings(max_examples=60, deadline=None)
def test_simultaneous_jobs_finish_in_work_order(work_list, speed):
    """With equal shares, less work always finishes no later."""
    sim = Simulator()
    host = Host(sim, HostSpec(name="h", speed=speed))
    executions = [host.execute(work=w) for w in work_list]
    sim.run()
    pairs = sorted(zip(work_list, executions), key=lambda p: p[0])
    finishes = [e.finished_at for _, e in pairs]
    assert finishes == sorted(finishes)


@given(st.lists(st.tuples(arrivals, sizes), min_size=1, max_size=10),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_transfers_never_beat_analytic_lower_bound(jobs, latency, bandwidth):
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=latency, bandwidth_mbps=bandwidth))
    transfers = []  # (transfer, its size)

    for arrival, size in jobs:
        sim.call_at(
            arrival,
            lambda s=size: transfers.append((link.transfer(size_mb=s), s)),
        )
    sim.run()
    assert len(transfers) == len(jobs)
    for transfer, size in transfers:
        assert transfer.done.triggered
        lower = latency + size / bandwidth
        assert transfer.elapsed >= lower - 1e-6


@given(st.lists(sizes, min_size=1, max_size=8),
       st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_link_serves_total_bytes_at_full_rate(size_list, bandwidth):
    """Zero-latency link: last completion == total MB / bandwidth."""
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=bandwidth))
    transfers = [link.transfer(size_mb=s) for s in size_list]
    sim.run()
    last = max(t.finished_at for t in transfers)
    assert last == pytest.approx(sum(size_list) / bandwidth, rel=1e-6)

"""Property: the cached runnable table survives arbitrary churn.

Satellite 3 of issue 10.  For ANY randomized sequence of membership
operations — join, activate, drain, retire, rejoin, up/down flaps,
workload reports — the incrementally-invalidated
:class:`~repro.repository.host_index.HostIndex` must agree *exactly*
(same hosts, same order) with

* a from-scratch index rebuilt over the same databases, and
* the reference linear scan (up + ACTIVE + executable installed,
  name-sorted)

after every single step.  Any missed invalidation, over-eager cache
reuse or membership-state leak shows up as a divergence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repository.host_index import HostIndex
from repro.repository.resources import MembershipState
from repro.repository.store import SiteRepository
from repro.sim.host import HostSpec

TASK_TYPES = ("math.lu_decompose", "signal.spectrum")

# ops are drawn as (opcode, host_pick, coin) triples; illegal ops for
# the picked host's current state degrade to a no-op, so every drawn
# sequence is a valid lifecycle without rejection-sampling waste
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=7),
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


def _install(repo, name, coin):
    for i, task_type in enumerate(TASK_TYPES):
        if coin or i == 0:
            repo.constraints.register(task_type, name, f"/bin/{name}")


def _reference(repo, task_type):
    return [
        r.name
        for r in sorted(repo.resources.up_hosts(), key=lambda r: r.name)
        if r.state == MembershipState.ACTIVE
        and repo.constraints.is_runnable(task_type, r.name)
    ]


def _apply(repo, step, opcode, pick, coin):
    """One membership-lifecycle mutation; returns a description."""
    names = repo.resources.host_names()
    time = float(step)
    if opcode == 0:  # join a brand-new host (JOINING, maybe activate)
        name = f"n{step:02d}"
        repo.resources.register_host(
            HostSpec(name=name), state=MembershipState.JOINING
        )
        _install(repo, name, coin)
        if coin:
            repo.resources.activate_host(name, time)
        return
    if not names:
        return
    name = names[pick % len(names)]
    state = repo.resources.membership_state(name)
    if opcode == 1:  # activate a joining/rejoining host
        if state in (MembershipState.JOINING, MembershipState.REJOINING):
            repo.resources.activate_host(name, time)
    elif opcode == 2:  # graceful drain
        if state == MembershipState.ACTIVE:
            repo.resources.begin_draining(name, time)
    elif opcode == 3:  # retire (constraints first, then the row)
        repo.constraints.remove_host(name, deregistering=True)
        repo.resources.deregister_host(name)
    elif opcode == 4:  # rejoin the oldest tombstone
        departed = sorted(repo.resources.departed_hosts())
        if departed:
            back = departed[pick % len(departed)]
            repo.resources.rejoin_host(HostSpec(name=back), time=time)
            _install(repo, back, coin)
            if coin:
                repo.resources.activate_host(back, time)
    elif opcode == 5:  # up/down flap
        if repo.resources.get(name).up:
            repo.resources.mark_down(name, time)
        else:
            repo.resources.mark_up(name, time)
    else:  # workload report: dynamic write, membership unchanged
        repo.resources.update_workload(
            name, load=float(pick), available_memory_mb=64, time=time
        )


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_cached_table_equals_rebuild_under_churn(ops):
    repo = SiteRepository("prop-site")
    for i in range(3):
        name = f"h{i:02d}"
        repo.resources.register_host(HostSpec(name=name))
        _install(repo, name, coin=True)

    for step, (opcode, pick, coin) in enumerate(ops):
        _apply(repo, step, opcode, pick, coin)
        fresh = HostIndex(repo.resources, repo.constraints)
        for task_type in TASK_TYPES:
            cached = [r.name for r in
                      repo.host_index.runnable_up_hosts(task_type)]
            rebuilt = [r.name for r in fresh.runnable_up_hosts(task_type)]
            assert cached == rebuilt == _reference(repo, task_type), (
                f"step {step} op {opcode} on pick {pick}: cached={cached} "
                f"rebuilt={rebuilt} reference={_reference(repo, task_type)}"
            )


@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_epochs_only_ever_increase(ops):
    """A host's membership epoch is monotone across any churn sequence."""
    repo = SiteRepository("prop-site")
    for i in range(3):
        name = f"h{i:02d}"
        repo.resources.register_host(HostSpec(name=name))
        _install(repo, name, coin=True)

    high_water = {}
    for step, (opcode, pick, coin) in enumerate(ops):
        _apply(repo, step, opcode, pick, coin)
        for name in repo.resources.host_names():
            epoch = repo.resources.membership_epoch(name)
            assert epoch >= high_water.get(name, 0)
            high_water[name] = epoch
        for name, epoch in repo.resources.departed_hosts().items():
            assert epoch >= high_water.get(name, 0)
            high_water[name] = epoch

"""Property-based tests: allocation tables, admission order, tables, viz."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import AllocationTable, TaskAssignment

names = st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=1, max_size=8)

assignments = st.lists(
    st.tuples(
        names,  # task id (deduped below)
        names,  # site
        st.lists(names, min_size=1, max_size=4, unique=True),  # hosts
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    min_size=0,
    max_size=20,
)


@given(assignments, names)
@settings(max_examples=80, deadline=None)
def test_allocation_table_dict_roundtrip(raw, app_name):
    table = AllocationTable(app_name, scheduler="prop")
    seen = set()
    for task_id, site, hosts, predicted in raw:
        if task_id in seen:
            continue
        seen.add(task_id)
        table.assign(TaskAssignment(task_id, site, tuple(hosts), predicted))
    restored = AllocationTable.from_dict(table.to_dict())
    assert restored.to_dict() == table.to_dict()
    assert len(restored) == len(table)
    for task_id in seen:
        assert restored.get(task_id).hosts == table.get(task_id).hosts


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                max_size=10))
@settings(max_examples=30, deadline=None)
def test_admission_order_is_priority_then_fifo(priorities):
    from repro.runtime import AdmissionQueue
    from tests.runtime.conftest import build_runtime, chain_afg

    rt = build_runtime()
    users_db = rt.repositories["alpha"].users
    for p in sorted(set(priorities)):
        users_db.add_user(f"u{p}", "x", priority=p)

    queue = AdmissionQueue(rt, max_concurrent=1)
    signals = []
    for i, p in enumerate(priorities):
        afg = chain_afg(n=1, name=f"app{i:02d}")
        signals.append(queue.submit(afg, f"u{p}"))

    def waiter():
        for s in signals:
            yield s

    rt.sim.run_until_complete(rt.sim.process(waiter()))

    # expected: sort by (-priority, submission index)
    expected = [
        f"app{i:02d}"
        for i, _p in sorted(enumerate(priorities),
                            key=lambda pair: (-pair[1], pair[0]))
    ]
    assert queue.admitted_order == expected


row_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(alphabet=string.printable.strip(), max_size=12),
)


@given(st.lists(st.dictionaries(names, row_values, min_size=1, max_size=5),
                min_size=0, max_size=8))
@settings(max_examples=60, deadline=None)
def test_format_table_never_crashes_and_is_rectangular(rows):
    from repro.metrics import format_table

    text = format_table(rows, title="prop")
    lines = text.splitlines()
    assert lines[0] == "prop"
    if rows:
        # header + separator + one line per row
        assert len(lines) == 2 + 1 + len(rows)
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1, "all table lines must be equally wide"


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=0, max_size=50))
@settings(max_examples=60, deadline=None)
def test_sparkline_length_matches_samples(samples):
    from repro.viz import workload_sparkline

    line = workload_sparkline(samples, label="h")
    if samples:
        body = line.split("|")[1]
        assert len(body) == len(samples)

"""Echo-based failure detection when echo packets themselves are lost.

The guard the suspicion threshold provides: losing an echo to a healthy
host must not mark it down until ``suspicion_threshold`` *consecutive*
misses, and a single good echo afterwards clears the mark (recovery).
"""

from tests.runtime.conftest import build_runtime


def _gm_of(rt, host_name):
    for gm in rt.group_managers.values():
        if host_name in gm._believed_up:
            return gm
    raise AssertionError(f"no group manager covers {host_name}")


def test_lost_echoes_below_threshold_keep_host_up():
    rt = build_runtime(echo_period_s=1.0, suspicion_threshold=3)
    rt.start_monitoring()
    gm = _gm_of(rt, "a1")
    # all echoes start being lost just before the first round
    rt.sim.call_at(0.5, lambda: setattr(gm, "echo_loss_prob", 0.999999))
    # two rounds of misses: below the threshold, still believed up
    rt.sim.run(until=2.5)
    assert gm.believes_up("a1")
    assert gm._missed["a1"] == 2
    assert rt.stats.failure_notifications == 0
    assert rt.repositories["alpha"].resources.get("a1").up


def test_threshold_consecutive_misses_mark_down_then_recovery_clears():
    rt = build_runtime(echo_period_s=1.0, suspicion_threshold=3)
    rt.start_monitoring()
    gm = _gm_of(rt, "a1")
    rt.sim.call_at(0.5, lambda: setattr(gm, "echo_loss_prob", 0.999999))
    # third consecutive miss at t=3 declares the (healthy) host down
    rt.sim.run(until=3.5)
    assert not gm.believes_up("a1")
    assert gm.false_positives >= 1  # a1 (and any group sibling) was healthy
    assert rt.stats.failure_notifications >= 1
    assert not rt.repositories["alpha"].resources.get("a1").up
    # the LAN heals; the next good echo clears the mark
    gm.echo_loss_prob = 0.0
    rt.sim.run(until=4.5)
    assert gm.believes_up("a1")
    assert gm._missed["a1"] == 0
    assert rt.stats.recovery_notifications >= 1
    assert rt.repositories["alpha"].resources.get("a1").up


def test_interleaved_misses_never_trip_the_threshold():
    """A good echo between misses resets the consecutive count."""
    rt = build_runtime(echo_period_s=1.0, suspicion_threshold=2)
    rt.start_monitoring()
    gm = _gm_of(rt, "a1")

    # alternate: lose every echo in odd rounds, deliver in even rounds
    def set_loss(p):
        return lambda: setattr(gm, "echo_loss_prob", p)

    for t in range(1, 10, 2):
        rt.sim.call_at(t - 0.5, set_loss(0.999999))
        rt.sim.call_at(t + 0.5, set_loss(0.0))
    rt.sim.run(until=10.0)
    assert gm.believes_up("a1")
    assert gm.false_positives == 0
    assert rt.stats.failure_notifications == 0

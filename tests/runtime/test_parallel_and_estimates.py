"""Tests: parallel-task execution semantics and estimate/realised agreement."""

import pytest

from repro.afg import (
    ApplicationFlowGraph,
    ComputationMode,
    TaskNode,
    TaskProperties,
)
from repro.scheduler import SiteScheduler, estimate_schedule
from repro.tasklib import default_registry

from tests.runtime.conftest import build_runtime, chain_afg


def parallel_afg(n_nodes=2, scale=1.0):
    afg = ApplicationFlowGraph("par")
    afg.add_task(TaskNode(id="gen", task_type="matrix.generate_system",
                          n_out_ports=2,
                          properties=TaskProperties(workload_scale=scale)))
    afg.add_task(TaskNode(
        id="lu", task_type="matrix.lu_decomposition", n_in_ports=1,
        n_out_ports=1,
        properties=TaskProperties(mode=ComputationMode.PARALLEL,
                                  n_nodes=n_nodes, workload_scale=scale)))
    afg.connect("gen", "lu", src_port=0, size_mb=0.5)
    return afg


class TestParallelExecution:
    def test_parallel_slices_run_concurrently(self):
        """A 2-node parallel task takes ~span time, not 2x."""
        rt = build_runtime(
            site_hosts={"alpha": [("h1", 1.0, 256), ("h2", 1.0, 256)]}
        )
        afg = parallel_afg(n_nodes=2, scale=1.0)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        assert set(table.get("lu").hosts) == {"h1", "h2"}
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )
        sig = default_registry().get("matrix.lu_decomposition")
        span = sig.span_work(1.0, 2)  # per-node slice on speed-1 hosts
        record = result.records["lu"]
        assert record.measured_time == pytest.approx(span, rel=0.01)

    def test_parallel_speedup_vs_sequential(self):
        def makespan(n_nodes):
            rt = build_runtime(
                site_hosts={"alpha": [(f"h{i}", 1.0, 256) for i in range(4)]}
            )
            afg = parallel_afg(n_nodes=n_nodes, scale=1.0)
            if n_nodes == 1:
                afg.replace_task(afg.task("lu").with_properties(
                    mode=ComputationMode.SEQUENTIAL, n_nodes=1))
            table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
            result = rt.sim.run_until_complete(
                rt.execute_process(afg, table, execute_payloads=False)
            )
            return result.records["lu"].measured_time

        seq = makespan(1)
        par2 = makespan(2)
        par4 = makespan(4)
        assert par2 < seq
        assert par4 < par2
        # Amdahl-style overhead: sub-linear speedup
        assert par4 > seq / 4

    def test_group_member_failure_restarts_whole_task(self):
        rt = build_runtime(
            site_hosts={"alpha": [("h1", 1.0, 256), ("h2", 1.0, 256),
                                  ("h3", 1.0, 256), ("h4", 1.0, 256)]}
        )
        afg = parallel_afg(n_nodes=2, scale=2.0)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        victim = table.get("lu").hosts[0]
        proc = rt.execute_process(afg, table, execute_payloads=False)
        # fail one member while the parallel slices run; "gen" takes ~0.8s
        rt.sim.call_at(5.0, lambda: rt.topology.host(victim).fail())
        result = rt.sim.run_until_complete(proc)
        record = result.records["lu"]
        assert record.attempts == 2
        assert victim not in record.hosts
        assert len(record.hosts) == 2  # still a 2-node group


class TestEstimateAgreement:
    def test_estimate_matches_realised_for_quiet_chain(self):
        """No contention, no noise: the forward-pass estimate must match
        the simulated runtime's makespan to within transfer latencies."""
        rt = build_runtime()
        afg = chain_afg(n=4, scale=2.0, edge_mb=1.0)
        view = rt.federation_view()
        table = SiteScheduler(k=1).schedule(afg, view)

        def xfer(src, dst, mb):
            if src.hosts[0] == dst.hosts[0]:
                return 0.0
            return view.site_transfer_time(src.site, dst.site, mb)

        estimate = estimate_schedule(afg, table, xfer)
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )
        assert result.makespan == pytest.approx(estimate.makespan, rel=0.05)

    def test_contention_makes_realised_exceed_estimate(self):
        """Two identical apps on one 1-host site: each realised makespan
        exceeds its own single-app estimate (processor sharing)."""
        rt = build_runtime(site_hosts={"alpha": [("only", 1.0, 256)]})
        view = rt.federation_view()
        afg_a = chain_afg(n=3, scale=2.0, name="a")
        afg_b = chain_afg(n=3, scale=2.0, name="b")
        table_a = SiteScheduler(k=0).schedule(afg_a, view)
        table_b = SiteScheduler(k=0).schedule(afg_b, view)
        est = estimate_schedule(afg_a, table_a, lambda s, d, mb: 0.0)
        proc_a = rt.execute_process(afg_a, table_a, execute_payloads=False)
        proc_b = rt.execute_process(afg_b, table_b, execute_payloads=False)
        result_a = rt.sim.run_until_complete(proc_a)
        rt.sim.run_until_complete(proc_b)
        assert result_a.makespan > est.makespan * 1.5

"""Phi-accrual failure detection: slow is not dead.

Scripted echo-delay/outage sequences drive the Group Manager's phi
detector through its full transition table (TRUST -> SUSPECT ->
declared down -> recovered; SUSPECT -> TRUST on resumed arrivals), and
a side-by-side shows the count detector's false positive on a merely
slowed host — the failure mode phi exists to avoid.
"""

import math

import pytest

from repro.runtime.straggler import PhiAccrualDetector

from tests.runtime.conftest import build_runtime

_LN10 = math.log(10.0)


def _gm_of(rt, host_name):
    for gm in rt.group_managers.values():
        if host_name in gm._believed_up:
            return gm
    raise AssertionError(f"no group manager covers {host_name}")


def _host(rt, name):
    for host in rt.topology.all_hosts:
        if host.name == name:
            return host
    raise AssertionError(f"no host {name!r}")


class TestPhiAccrualDetector:
    def test_phi_zero_before_first_arrival(self):
        det = PhiAccrualDetector(expected_interval_s=1.0)
        assert det.phi(100.0) == 0.0

    def test_phi_grows_linearly_with_silence(self):
        det = PhiAccrualDetector(expected_interval_s=1.0)
        for t in (0.0, 1.0, 2.0, 3.0):
            det.heartbeat(t)
        # exponential model closed form: phi = elapsed / (mean * ln 10)
        assert det.phi(3.0 + _LN10) == pytest.approx(1.0)
        assert det.phi(3.0 + 2 * _LN10) == pytest.approx(2.0)

    def test_mean_uses_expected_interval_until_samples_exist(self):
        det = PhiAccrualDetector(expected_interval_s=2.0)
        det.heartbeat(0.0)
        assert det.mean_interval() == 2.0
        assert det.phi(2.0 * _LN10) == pytest.approx(1.0)

    def test_late_arrivals_stretch_the_mean(self):
        det = PhiAccrualDetector(expected_interval_s=1.0)
        for t in (0.0, 1.0, 2.0, 6.0):  # one 4s gap enters the history
            det.heartbeat(t)
        assert det.mean_interval() == pytest.approx(2.0)
        # the same silence now accrues suspicion half as fast
        assert det.phi(6.0 + 2 * _LN10) == pytest.approx(1.0)

    def test_reset_clears_history(self):
        det = PhiAccrualDetector(expected_interval_s=1.0)
        det.heartbeat(0.0)
        det.heartbeat(1.0)
        det.reset()
        assert det.phi(50.0) == 0.0
        assert det.mean_interval() == 1.0


class TestPhiTransitionTable:
    """period=1s, phi_suspect=1.0, phi_down=2.0: suspicion crosses 1.0
    after ~ln10 ≈ 2.3 silent periods and 2.0 after ~4.6."""

    def _runtime(self):
        rt = build_runtime(detector="phi", echo_period_s=1.0)
        rt.start_monitoring()
        return rt, _gm_of(rt, "a1"), _host(rt, "a1")

    def test_healthy_host_never_suspected(self):
        rt, gm, _ = self._runtime()
        rt.sim.run(until=30.0)
        assert gm.believes_up("a1")
        assert not gm.is_suspected("a1")
        assert rt.stats.failure_notifications == 0

    def test_long_outage_walks_suspect_then_down_then_recovers(self):
        rt, gm, host = self._runtime()
        rt.sim.call_at(3.5, host.fail)
        # rounds 4..5: elapsed < ln10, still trusted
        rt.sim.run(until=5.5)
        assert gm.believes_up("a1") and not gm.is_suspected("a1")
        # round 6: ~3 silent periods -> phi ≈ 1.3, SUSPECT
        rt.sim.run(until=6.5)
        assert gm.is_suspected("a1")
        assert gm.believes_up("a1")  # suspicion alone is not death
        assert rt.stats.failure_notifications == 0
        # round 8: ~5 silent periods -> phi ≥ 2.0, declared down
        rt.sim.run(until=8.5)
        assert not gm.believes_up("a1")
        assert rt.stats.failure_notifications == 1
        assert gm.false_positives == 0  # it really was down
        # recovery: first answered echo flips it back
        rt.sim.call_at(9.5, host.recover)
        rt.sim.run(until=10.5)
        assert gm.believes_up("a1")
        assert not gm.is_suspected("a1")
        assert rt.stats.recovery_notifications == 1

    def test_short_outage_suspects_then_retrusts_without_notification(self):
        rt, gm, host = self._runtime()
        rt.sim.call_at(3.5, host.fail)
        rt.sim.call_at(6.5, host.recover)
        rt.sim.run(until=6.4)
        assert gm.is_suspected("a1")  # 3 silent periods
        # round 7 answers (phi still ≥ 1, stays formally suspected),
        # round 8's fresh interval history drops phi below phi_suspect
        rt.sim.run(until=8.5)
        assert gm.believes_up("a1")
        assert not gm.is_suspected("a1")
        assert rt.stats.failure_notifications == 0
        assert rt.stats.recovery_notifications == 0  # never declared down

    def test_detection_is_recorded_in_detection_log(self):
        rt, gm, host = self._runtime()
        rt.sim.call_at(3.5, host.fail)
        rt.sim.run(until=9.0)
        kinds = [(h, k) for _, h, k in rt.stats.detection_log if h == "a1"]
        assert kinds == [("a1", "down")]


class TestSlowIsNotDead:
    """The contrast the phi detector exists for: a 10x-slowed host
    answers echoes late; count + tight deadline kills it, phi doesn't."""

    def test_count_detector_with_tight_deadline_false_positives(self):
        # healthy RTT = 2 x 0.0005s; the slowed host's RTT is 10x that,
        # so a 2ms deadline misses every round
        rt = build_runtime(echo_period_s=1.0, suspicion_threshold=2,
                           echo_timeout_s=0.002)
        rt.start_monitoring()
        gm = _gm_of(rt, "a1")
        _host(rt, "a1").set_slowdown(10.0)
        rt.sim.run(until=10.0)
        assert not gm.believes_up("a1")  # declared dead...
        assert _host(rt, "a1").is_up()  # ...while merely slow
        assert gm.false_positives >= 1
        assert rt.stats.failure_notifications >= 1

    def test_phi_detector_keeps_trusting_the_slowed_host(self):
        rt = build_runtime(detector="phi", echo_period_s=1.0)
        rt.start_monitoring()
        gm = _gm_of(rt, "a1")
        _host(rt, "a1").set_slowdown(10.0)
        rt.sim.run(until=30.0)
        assert gm.believes_up("a1")
        assert not gm.is_suspected("a1")
        assert gm.false_positives == 0
        assert rt.stats.failure_notifications == 0

    def test_flapping_host_never_triggers_spurious_failover(self):
        # a host flapping between nominal and 6x-slow answers every
        # echo; the phi detector must never report it down, so no
        # failure notification and no repository down-mark ever happens
        from repro.sim.failures import FailureInjector

        rt = build_runtime(detector="phi", echo_period_s=1.0)
        rt.start_monitoring()
        gm = _gm_of(rt, "a1")
        injector = FailureInjector(rt.sim)
        injector.start_flapping(_host(rt, "a1"), mean_normal_s=5.0,
                                mean_slow_s=3.0, factor=6.0)
        rt.sim.run(until=120.0)
        assert injector.slowdown_intervals("a1"), "host never flapped"
        assert gm.believes_up("a1")
        assert gm.false_positives == 0
        assert rt.stats.failure_notifications == 0
        assert rt.repositories["alpha"].resources.get("a1").up


class TestConfigValidation:
    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError):
            build_runtime(detector="oracle")

    def test_phi_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError):
            build_runtime(detector="phi", phi_suspect=2.0, phi_down=1.0)

    def test_echo_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            build_runtime(echo_timeout_s=0.0)

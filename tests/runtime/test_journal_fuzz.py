"""Property test: a bit-flipped journal resumes exact or dies typed.

The crash-consistency contract under arbitrary single/multi-bit rot
(DESIGN §16): resuming from a damaged journal must either reproduce the
pure-evaluation oracle byte-for-byte (the flip landed in the torn-tail
region and was truncated away, costing only re-execution) or raise a
*typed* error (`JournalCorruptError` for interior damage,
`ValueError` when the schedule record itself is unreadable).  What it
must never do is complete with different outputs — silent corruption of
restored state is the failure mode checksummed journals exist to kill.
"""

import shutil

import numpy as np
import pytest

from repro import VDCE
from repro.errors import JournalCorruptError
from repro.runtime.checkpoint import (
    create_checkpoint_dir,
    expected_output_hashes,
    final_output_hashes,
    journal_path,
    resume_run,
)
from repro.scheduler import SiteScheduler
from repro.workloads import linear_pipeline

TRIALS_PER_SEED = 3
CRASH_AT_S = 5.0


def crashed_run(directory, seed):
    """A checkpointed run killed mid-flight, repos saved for resume."""
    env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=seed)
    afg = linear_pipeline(n_stages=5, cost=4.0, edge_mb=1.0)
    expected = expected_output_hashes(afg, env.runtime.registry)
    journal = create_checkpoint_dir(env, str(directory))
    table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
    env.runtime.execute_process(afg, table, journal=journal)
    env.sim.run(until=CRASH_AT_S)
    env.save_repositories(str(directory / "repos"))
    return expected


def flip_bits(path, rng, n_flips, lo=0):
    data = bytearray(path.read_bytes())
    offsets = sorted(
        lo + int(o)
        for o in rng.choice(len(data) - lo, size=n_flips, replace=False)
    )
    for offset in offsets:
        data[offset] ^= 1 << int(rng.integers(8))
    path.write_bytes(bytes(data))
    return offsets


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bit_rot_resumes_exact_or_fails_typed(seed, tmp_path):
    base = tmp_path / "base"
    expected = crashed_run(base, seed)
    pristine = (base / "journal.jsonl").read_bytes()
    assert len(pristine) > 200  # the fuzz has a real target

    rng = np.random.default_rng(1000 + seed)
    outcomes = []
    # trials 0..n-1 flip anywhere (in practice: interior -> typed death);
    # the last trial aims at the final record, the torn-tail regime
    tail_start = len(pristine.rstrip(b"\n").rsplit(b"\n", 1)[0]) + 1
    for trial in range(TRIALS_PER_SEED + 1):
        directory = tmp_path / f"trial-{trial}"
        shutil.copytree(base, directory)
        journal_file = directory / "journal.jsonl"
        journal_file.write_bytes(pristine)
        if trial < TRIALS_PER_SEED:
            flip_bits(journal_file, rng, n_flips=int(rng.integers(1, 4)))
        else:
            flip_bits(journal_file, rng, n_flips=1, lo=tail_start)

        try:
            _env, result = resume_run(str(directory))
        except (JournalCorruptError, ValueError):
            outcomes.append("typed-death")
        else:
            # tail damage truncated quietly: re-executes more, same bytes
            assert final_output_hashes(result) == expected
            outcomes.append("exact")
    # every trial landed in the contract; no third outcome exists
    assert set(outcomes) <= {"exact", "typed-death"}
    # the tail flip is indistinguishable from a torn append: quiet
    # truncation plus re-execution, never a refusal
    assert outcomes[-1] == "exact"


def test_unfuzzed_control_resumes_exact(tmp_path):
    """The harness itself is sound: no flips -> resume matches oracle."""
    expected = crashed_run(tmp_path, seed=0)
    _env, result = resume_run(str(tmp_path))
    assert final_output_hashes(result) == expected

"""Tests for the execution coordinator (paper §4.2 Data Manager protocol)."""

import numpy as np
import pytest

from repro.afg import (
    ApplicationFlowGraph,
    FileSpec,
    InputBinding,
    TaskNode,
    TaskProperties,
)
from repro.runtime import ExecutionError
from repro.scheduler import SiteScheduler

from tests.runtime.conftest import build_runtime, chain_afg


def schedule_and_execute(rt, afg, k=1, **kw):
    table = SiteScheduler(k=k).schedule(afg, rt.federation_view())
    proc = rt.execute_process(afg, table, **kw)
    return rt.sim.run_until_complete(proc), table


class TestBasicExecution:
    def test_chain_completes_with_timeline(self, runtime):
        result, table = schedule_and_execute(runtime, chain_afg(n=3))
        assert result.application == "chain"
        assert set(result.records) == {"t0", "t1", "t2"}
        assert result.makespan > 0
        assert result.setup_time > 0
        r0, r2 = result.records["t0"], result.records["t2"]
        assert r0.finished_at <= r2.started_at + 1e9  # sanity
        assert r2.finished_at == result.finished_at
        assert all(r.attempts == 1 for r in result.records.values())

    def test_dependencies_respected(self, runtime):
        result, _ = schedule_and_execute(runtime, chain_afg(n=4))
        recs = result.records
        for a, b in zip("t0 t1 t2".split(), "t1 t2 t3".split()):
            assert recs[a].finished_at <= recs[b].started_at or (
                # start includes waiting for the transfer; finish of parent
                # must precede child's execution start
                recs[b].started_at >= recs[a].finished_at
            )

    def test_channel_protocol_counted(self, runtime):
        afg = chain_afg(n=3)  # 2 edges
        schedule_and_execute(runtime, afg)
        assert runtime.stats.channel_setups == 2
        assert runtime.stats.channel_acks == 2
        assert runtime.stats.startup_signals == 1
        assert runtime.stats.data_transfers >= 2

    def test_execution_requests_reach_controllers(self, runtime):
        afg = chain_afg(n=3)
        result, table = schedule_and_execute(runtime, afg)
        hosts = set(table.hosts_used())
        for h in hosts:
            assert runtime.app_controllers[h].requests_received >= 1
        assert runtime.stats.execution_requests >= len(hosts)

    def test_real_payimpl_linear_solver_through_runtime(self, runtime):
        """The full matrix pipeline computes a genuinely correct solution."""
        afg = ApplicationFlowGraph("lin-solve")
        afg.add_task(TaskNode(id="gen", task_type="matrix.generate_system",
                              n_out_ports=2,
                              properties=TaskProperties(workload_scale=0.2)))
        afg.add_task(TaskNode(id="lu", task_type="matrix.lu_decomposition",
                              n_in_ports=1, n_out_ports=1,
                              properties=TaskProperties(workload_scale=0.2)))
        afg.add_task(TaskNode(id="solve", task_type="matrix.triangular_solve",
                              n_in_ports=2, n_out_ports=1,
                              properties=TaskProperties(workload_scale=0.2)))
        afg.connect("gen", "lu", src_port=0, size_mb=0.5)
        afg.connect("gen", "solve", src_port=1, dst_port=1, size_mb=0.1)
        afg.connect("lu", "solve", dst_port=0, size_mb=0.5)
        result, _ = schedule_and_execute(runtime, afg)
        (x,) = result.outputs["solve"]
        a, b = runtime.registry.get("matrix.generate_system").run([], scale=0.2)
        assert np.linalg.norm(a @ x - b) < 1e-8

    def test_payloads_disabled_produces_none_outputs(self, runtime):
        result, _ = schedule_and_execute(runtime, chain_afg(n=2),
                                         execute_payloads=False)
        # exit task has no out ports? chain's last is generic.compute (1 out)
        assert result.outputs["t1"] == [None]

    def test_measured_time_feeds_task_perf_db(self, runtime):
        schedule_and_execute(runtime, chain_afg(n=3))
        assert runtime.stats.taskperf_updates == 3
        total = sum(
            repo.task_perf.measurements_recorded
            for repo in runtime.repositories.values()
        )
        assert total == 3

    def test_makespan_reflects_serial_chain(self, runtime):
        # 3 x scale-2 compute tasks: at least sum of fastest possible times
        result, table = schedule_and_execute(runtime, chain_afg(n=3, scale=2.0))
        assert result.makespan >= 1.0


class TestFileInputs:
    def afg_with_file(self):
        afg = ApplicationFlowGraph("filey")
        afg.add_task(
            TaskNode(
                id="t",
                task_type="generic.compute",
                n_in_ports=1,
                n_out_ports=1,
                properties=TaskProperties(
                    inputs=(InputBinding(0, FileSpec("/data/in.dat", 5.0)),)
                ),
            )
        )
        return afg

    def test_staged_file_placeholder(self, runtime):
        from repro.runtime import StagedFile

        result, _ = schedule_and_execute(runtime, self.afg_with_file())
        (out,) = result.outputs["t"]
        assert isinstance(out, StagedFile)
        assert out.size_mb == 5.0
        assert runtime.io_service.staged_count == 1

    def test_registered_loader_resolves_contents(self, runtime):
        runtime.io_service.register_loader("/data/in.dat", lambda spec: "CONTENTS")
        result, _ = schedule_and_execute(runtime, self.afg_with_file())
        assert result.outputs["t"] == ["CONTENTS"]

    def test_duplicate_loader_rejected(self, runtime):
        runtime.io_service.register_loader("/x", lambda s: 1)
        with pytest.raises(ValueError):
            runtime.io_service.register_loader("/x", lambda s: 2)


class TestConsoleService:
    def test_suspend_delays_task_start(self, runtime):
        afg = chain_afg(n=2, name="suspendable")
        table = SiteScheduler(k=1).schedule(afg, runtime.federation_view())
        runtime.console.suspend("suspendable")
        proc = runtime.execute_process(afg, table)
        runtime.sim.call_at(50.0, lambda: runtime.console.resume("suspendable"))
        result = runtime.sim.run_until_complete(proc)
        assert result.records["t0"].started_at >= 50.0

    def test_resume_without_suspend_is_noop(self, runtime):
        runtime.console.resume("nothing")
        assert not runtime.console.is_suspended("nothing")

    def test_double_suspend_is_idempotent(self, runtime):
        runtime.console.suspend("app")
        runtime.console.suspend("app")
        assert runtime.console.suspend_count == 1
        runtime.console.resume("app")
        assert not runtime.console.is_suspended("app")


class TestFaultHandling:
    def test_host_failure_triggers_reschedule_and_completion(self):
        rt = build_runtime(
            site_hosts={"alpha": [("a1", 4.0, 256), ("a2", 1.0, 256)]},
        )
        afg = chain_afg(n=1, scale=20.0)  # single long task -> lands on a1
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        assert table.get("t0").hosts == ("a1",)
        proc = rt.execute_process(afg, table)
        # kill a1 while the task runs
        rt.sim.call_at(2.0, lambda: rt.topology.host("a1").fail())
        result = rt.sim.run_until_complete(proc)
        assert result.reschedules == 1
        record = result.records["t0"]
        assert record.attempts == 2
        assert record.hosts == ("a2",)
        assert record.was_rescheduled
        assert rt.stats.failure_restarts == 1

    def test_no_replacement_raises_execution_error(self):
        rt = build_runtime(site_hosts={"alpha": [("only", 1.0, 256)]})
        afg = chain_afg(n=1, scale=20.0)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        proc = rt.execute_process(afg, table)
        rt.sim.call_at(2.0, lambda: rt.topology.host("only").fail())
        with pytest.raises(ExecutionError, match="no replacement"):
            rt.sim.run_until_complete(proc)

    def test_load_threshold_rescheduling(self):
        rt = build_runtime(
            site_hosts={"alpha": [("a1", 4.0, 256), ("a2", 1.0, 256)]},
            load_threshold=3.0,
            check_period_s=0.5,
        )
        afg = chain_afg(n=1, scale=20.0)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        assert table.get("t0").hosts == ("a1",)
        proc = rt.execute_process(afg, table)
        # owner returns: background load way over threshold
        rt.sim.call_at(1.0, lambda: rt.topology.host("a1").set_bg_load(10.0))
        result = rt.sim.run_until_complete(proc)
        record = result.records["t0"]
        assert record.attempts == 2
        assert record.hosts == ("a2",)
        assert rt.stats.reschedule_requests == 1
        assert any("load" in r for r in record.reschedule_reasons)

    def test_load_below_threshold_does_not_reschedule(self):
        rt = build_runtime(
            site_hosts={"alpha": [("a1", 4.0, 256), ("a2", 1.0, 256)]},
            load_threshold=5.0,
            check_period_s=0.5,
        )
        afg = chain_afg(n=1, scale=8.0)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        proc = rt.execute_process(afg, table)
        rt.sim.call_at(0.5, lambda: rt.topology.host("a1").set_bg_load(2.0))
        result = rt.sim.run_until_complete(proc)
        assert result.records["t0"].attempts == 1
        assert result.reschedules == 0

    def test_failure_mid_pipeline_preserves_correctness(self):
        rt = build_runtime(
            site_hosts={
                "alpha": [("a1", 2.0, 256), ("a2", 2.0, 256)],
                "beta": [("b1", 2.0, 256)],
            }
        )
        afg = chain_afg(n=3, scale=5.0)
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        first_host = table.get("t0").hosts[0]
        proc = rt.execute_process(afg, table)
        rt.sim.call_at(1.0, lambda: rt.topology.host(first_host).fail())
        result = rt.sim.run_until_complete(proc)
        # pipeline still completes, final output flows
        assert "t2" in result.outputs
        assert result.reschedules >= 1


class TestSubmitPipeline:
    def test_submit_end_to_end(self, runtime):
        result = runtime.submit(chain_afg(n=3), SiteScheduler(k=1))
        assert result.makespan > 0
        assert len(result.records) == 3

    def test_submit_authenticates(self, runtime):
        from repro.repository import AuthenticationError

        with pytest.raises(AuthenticationError):
            runtime.submit(chain_afg(n=2), user="admin", password="wrong")
        result = runtime.submit(chain_afg(n=2, name="authed"),
                                user="admin", password="vdce-admin")
        assert result.application == "authed"

    def test_submit_with_monitoring_running(self, runtime):
        runtime.start_monitoring()
        result = runtime.submit(chain_afg(n=2, name="monitored"))
        assert result.makespan > 0

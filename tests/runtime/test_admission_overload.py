"""Overload protection: bounded admission, shedding, TTLs, brownout.

Exercises the :class:`~repro.runtime.admission.AdmissionPolicy` ladder
(queue bound with deterministic victim choice, per-user rate limits and
quotas, deadline/TTL expiry) and the brownout hooks that shrink
concurrency and refuse work under federation overload.
"""

import pytest

from repro.repository.users import UnknownUserError
from repro.runtime.admission import (
    AdmissionExpired,
    AdmissionPolicy,
    AdmissionQueue,
    AdmissionRejected,
)
from repro.runtime.overload import BrownoutController, OverloadPolicy

from tests.runtime.conftest import build_runtime, chain_afg


def wait_all(rt, signals):
    """Drive every signal to a terminal state; return name -> outcome."""
    outcomes = {}

    def waiter():
        for signal in signals:
            try:
                result = yield signal
                outcomes[result.application] = "completed"
            except AdmissionRejected as exc:
                outcomes[exc.application] = f"rejected:{exc.reason}"
            except AdmissionExpired as exc:
                outcomes[exc.application] = "expired"

    rt.sim.run_until_complete(rt.sim.process(waiter()))
    return outcomes


class TestBoundedQueue:
    def test_overflow_rejects_newcomer_on_equal_priority(self):
        rt = build_runtime()
        queue = AdmissionQueue(
            rt, max_concurrent=1, policy=AdmissionPolicy(max_queued=2)
        )
        # all four land before the dispatcher runs: two queue, the rest
        # (same priority, latest arrival = worst badness) are rejected
        signals = [
            queue.submit(chain_afg(n=1, name=f"b{i}"), "admin")
            for i in range(4)
        ]
        outcomes = wait_all(rt, signals)
        assert outcomes["b0"] == outcomes["b1"] == "completed"
        assert outcomes["b2"] == "rejected:queue_full"
        assert outcomes["b3"] == "rejected:queue_full"
        assert queue.peak_queued <= 2

    def test_overflow_sheds_lowest_priority_victim(self):
        rt = build_runtime()
        repo = rt.repositories["alpha"]
        repo.users.add_user("low", "x", priority=1)
        repo.users.add_user("high", "x", priority=9)
        queue = AdmissionQueue(
            rt, max_concurrent=1, policy=AdmissionPolicy(max_queued=1)
        )
        s_running = queue.submit(chain_afg(n=2, scale=5.0, name="first"),
                                 "admin")
        rt.sim.run(until=0.001)  # let the dispatcher start "first"
        assert queue.running == 1 and queue.queued == 0
        s_low = queue.submit(chain_afg(n=1, name="victim"), "low")
        s_high = queue.submit(chain_afg(n=1, name="vip"), "high")
        outcomes = wait_all(rt, [s_running, s_low, s_high])
        # the high-priority arrival displaced the queued low one
        assert outcomes["victim"] == "rejected:queue_full"
        assert outcomes["vip"] == "completed"
        assert outcomes["first"] == "completed"
        assert [e["application"] for e in queue.shed_log] == ["victim"]

    def test_shed_log_and_counts(self):
        rt = build_runtime()
        queue = AdmissionQueue(
            rt, max_concurrent=1, policy=AdmissionPolicy(max_queued=1)
        )
        signals = [
            queue.submit(chain_afg(n=1, name=f"s{i}"), "admin")
            for i in range(3)
        ]
        wait_all(rt, signals)
        assert [e["application"] for e in queue.shed_log] == ["s1", "s2"]
        for entry in queue.shed_log:
            assert entry["reason"] == "queue_full"
            assert entry["user"] == "admin"

    def test_ttl_expires_queued_entry(self):
        rt = build_runtime()
        queue = AdmissionQueue(
            rt, max_concurrent=1,
            policy=AdmissionPolicy(default_ttl_s=0.001),
        )
        # the first admits instantly; the second sits queued past its TTL
        s0 = queue.submit(chain_afg(n=2, scale=5.0, name="runs"), "admin")
        s1 = queue.submit(chain_afg(n=1, name="stale"), "admin")
        outcomes = wait_all(rt, [s0, s1])
        assert outcomes["runs"] == "completed"
        assert outcomes["stale"] == "expired"
        assert queue.shed_log[0]["reason"] == "expired"

    def test_deadline_expires_queued_entry(self):
        rt = build_runtime()
        queue = AdmissionQueue(
            rt, max_concurrent=1, policy=AdmissionPolicy()
        )
        s0 = queue.submit(chain_afg(n=2, scale=5.0, name="runs"), "admin")
        s1 = queue.submit(chain_afg(n=1, name="late"), "admin",
                          deadline_s=0.001)
        outcomes = wait_all(rt, [s0, s1])
        assert outcomes["late"] == "expired"

    def test_no_policy_is_the_legacy_unbounded_queue(self):
        rt = build_runtime()
        queue = AdmissionQueue(rt, max_concurrent=1)
        signals = [
            queue.submit(chain_afg(n=1, name=f"p{i}"), "admin")
            for i in range(3)
        ]
        outcomes = wait_all(rt, signals)
        assert set(outcomes.values()) == {"completed"}
        assert queue.shed_log == []


class TestUserLimits:
    def test_rate_limit_rejects_burst_overflow(self):
        rt = build_runtime()
        queue = AdmissionQueue(
            rt, max_concurrent=4,
            policy=AdmissionPolicy(user_rate_per_s=0.1, user_burst=2),
        )
        signals = [
            queue.submit(chain_afg(n=1, name=f"r{i}"), "admin")
            for i in range(4)
        ]
        outcomes = wait_all(rt, signals)
        assert outcomes["r0"] == "completed"
        assert outcomes["r1"] == "completed"
        assert outcomes["r2"] == "rejected:rate"
        assert outcomes["r3"] == "rejected:rate"

    def test_quota_bounds_queued_entries_per_user(self):
        rt = build_runtime()
        repo = rt.repositories["alpha"]
        repo.users.add_user("other", "x", priority=1)
        queue = AdmissionQueue(
            rt, max_concurrent=1,
            policy=AdmissionPolicy(user_max_queued=1),
        )
        s0 = queue.submit(chain_afg(n=2, scale=5.0, name="q0"), "admin")
        rt.sim.run(until=0.001)  # q0 is running, not queued
        s1 = queue.submit(chain_afg(n=1, name="q1"), "admin")
        s2 = queue.submit(chain_afg(n=1, name="q2"), "admin")  # over quota
        s3 = queue.submit(chain_afg(n=1, name="q3"), "other")  # other user ok
        outcomes = wait_all(rt, [s0, s1, s2, s3])
        assert outcomes["q2"] == "rejected:quota"
        assert outcomes["q0"] == outcomes["q1"] == outcomes["q3"] == "completed"

    def test_unknown_user_raises_typed_error(self):
        rt = build_runtime()
        queue = AdmissionQueue(rt)
        with pytest.raises(UnknownUserError) as excinfo:
            queue.submit(chain_afg(n=1), "ghost")
        assert excinfo.value.user_name == "ghost"
        # regression: UnknownUserError still is a KeyError for callers
        # that pinned the old contract
        assert isinstance(excinfo.value, KeyError)


class TestBrownoutLadder:
    def make_controller(self, level_occupancy):
        rt = build_runtime()
        controller = BrownoutController(rt.sim, OverloadPolicy())
        controller.update("alpha", "g0", level_occupancy)
        return rt, controller

    def test_levels(self):
        _, c = self.make_controller(0.5)
        assert c.level == 0 and c.speculation_allowed()
        c.update("alpha", "g0", 0.75)
        assert c.level == 1 and not c.speculation_allowed()
        c.update("alpha", "g0", 0.9)
        assert c.level == 2
        assert c.concurrency_limit(4) == 2
        assert c.concurrency_limit(1) == 1  # never below 1
        c.update("alpha", "g0", 0.99)
        assert c.level == 3 and c.refuse_new_work()
        assert len(c.shifts) == 3

    def test_federation_mean(self):
        _, c = self.make_controller(1.0)
        c.update("beta", "g1", 0.0)
        assert c.federation_occupancy() == pytest.approx(0.5)
        assert c.occupancy_of_site("alpha") == pytest.approx(1.0)

    def test_brownout_refuses_admission(self):
        rt = build_runtime(overload=OverloadPolicy())
        rt.brownout.update("alpha", "g0", 1.0)  # critical
        assert rt.brownout.refuse_new_work()
        queue = AdmissionQueue(rt, policy=AdmissionPolicy())
        outcomes = wait_all(
            rt, [queue.submit(chain_afg(n=1, name="no"), "admin")]
        )
        assert outcomes["no"] == "rejected:brownout"

    def test_brownout_shrinks_concurrency(self):
        rt = build_runtime(overload=OverloadPolicy())
        rt.brownout.update("alpha", "g0", 0.9)  # severe
        queue = AdmissionQueue(rt, max_concurrent=4)
        assert queue._concurrency_limit() == 2

    def test_unarmed_runtime_has_no_brownout(self):
        rt = build_runtime()
        assert rt.brownout is None
        assert rt.breakers is None


class TestShedAttribution:
    def test_explain_reports_shed_wait_time(self):
        from repro.obs.attribution import ATTRIBUTION_SCHEMA_VERSION, explain
        from repro.runtime.vdce_runtime import RuntimeConfig, VDCERuntime
        from repro.sim import TopologyBuilder
        from repro.trace.tracer import Tracer

        builder = TopologyBuilder(seed=0).wan_defaults(0.02, 2.0)
        builder.site("alpha", hosts=[("a1", 1.0, 256)])
        rt = VDCERuntime(
            builder.build(),
            config=RuntimeConfig(causal_spans=True),
            tracer=Tracer(),
        )
        queue = AdmissionQueue(
            rt, max_concurrent=1,
            policy=AdmissionPolicy(default_ttl_s=0.5),
        )
        s0 = queue.submit(chain_afg(n=2, scale=5.0, name="runs"), "admin")
        s1 = queue.submit(chain_afg(n=1, name="starved"), "admin")
        outcomes = wait_all(rt, [s0, s1])
        assert outcomes["starved"] == "expired"
        report = explain(rt.tracer.events())
        assert report["schema_version"] == ATTRIBUTION_SCHEMA_VERSION
        breakdown = report["apps"]["starved"]["breakdown"]
        # the whole wait (submit -> TTL expiry) is attributed to "shed"
        assert breakdown["shed"] == pytest.approx(0.5)
        assert breakdown["execution"] == 0.0


class TestDeterminism:
    def run_once(self):
        rt = build_runtime()
        queue = AdmissionQueue(
            rt, max_concurrent=1,
            policy=AdmissionPolicy(max_queued=2, default_ttl_s=1.0),
        )
        signals = [
            queue.submit(chain_afg(n=2, scale=2.0, name=f"d{i}"), "admin")
            for i in range(6)
        ]
        outcomes = wait_all(rt, signals)
        return outcomes, list(queue.admitted_order), list(queue.shed_log)

    def test_same_config_same_outcome(self):
        assert self.run_once() == self.run_once()

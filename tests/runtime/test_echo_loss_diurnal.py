"""Tests: lossy-LAN echo detection and the diurnal load generator."""

import math

import pytest

from repro.runtime import RuntimeConfig
from repro.sim import DiurnalLoad, Host, HostSpec, Simulator

from tests.runtime.conftest import build_runtime


class TestEchoLoss:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(echo_loss_prob=1.0)
        with pytest.raises(ValueError):
            RuntimeConfig(suspicion_threshold=0)

    def test_lossy_lan_with_threshold_one_raises_false_positives(self):
        rt = build_runtime(echo_period_s=1.0, echo_loss_prob=0.3,
                           suspicion_threshold=1)
        rt.start_monitoring()
        rt.sim.run(until=60.0)  # nobody actually fails
        false_positives = sum(
            gm.false_positives for gm in rt.group_managers.values()
        )
        assert false_positives > 0
        # a false down is followed by recovery at the next good echo
        assert rt.stats.recovery_notifications > 0

    def test_suspicion_threshold_suppresses_false_positives(self):
        def count_false_positives(threshold):
            rt = build_runtime(echo_period_s=1.0, echo_loss_prob=0.3,
                               suspicion_threshold=threshold, seed=7)
            rt.start_monitoring()
            rt.sim.run(until=120.0)
            return sum(gm.false_positives for gm in rt.group_managers.values())

        naive = count_false_positives(1)
        guarded = count_false_positives(4)
        assert guarded < naive
        # with p=0.3 and threshold 4, P(4 consecutive losses) < 1%/round
        assert guarded <= max(1, naive // 4)

    def test_real_failure_still_detected_under_loss(self):
        rt = build_runtime(echo_period_s=1.0, echo_loss_prob=0.2,
                           suspicion_threshold=3)
        rt.start_monitoring()
        rt.sim.call_at(10.0, lambda: rt.topology.host("a1").fail())
        rt.sim.run(until=30.0)
        downs = [e for e in rt.stats.detection_log
                 if e[1] == "a1" and e[2] == "down"]
        assert downs
        # the declaring echo must come after the crash (earlier lost
        # packets may legitimately pre-charge the suspicion counter)
        assert downs[-1][0] >= 10.0
        assert not rt.repositories["alpha"].resources.get("a1").up


class TestDiurnalLoad:
    def test_day_night_cycle(self):
        sim = Simulator(seed=1)
        host = Host(sim, HostSpec(name="h"))
        DiurnalLoad(base=0.1, amplitude=2.0, day_length_s=100.0,
                    jitter=0.0, period_s=1.0).start(sim, host)
        samples = {}
        for t in (25.0, 75.0):  # mid-"day" vs mid-"night"
            sim.call_at(t + 0.5, lambda t=t: samples.__setitem__(t, host.bg_load))
        sim.run(until=100.0)
        assert samples[25.0] == pytest.approx(2.1, abs=0.1)  # sin peak
        assert samples[75.0] == pytest.approx(0.1, abs=0.01)  # clamped night

    def test_phase_shifts_the_peak(self):
        def peak_time(phase):
            sim = Simulator(seed=2)
            host = Host(sim, HostSpec(name="h"))
            DiurnalLoad(base=0.0, amplitude=1.0, day_length_s=40.0,
                        phase_s=phase, jitter=0.0, period_s=0.5).start(sim, host)
            best = [0.0, 0.0]
            for i in range(80):
                t = i * 0.5 + 0.25
                def probe(t=t):
                    if host.bg_load > best[1]:
                        best[0], best[1] = t, host.bg_load
                sim.call_at(t, probe)
            sim.run(until=40.0)
            return best[0]

        assert abs(peak_time(0.0) - 10.0) <= 1.0
        assert abs(peak_time(10.0) - 20.0) <= 1.0

    def test_never_negative_with_jitter(self):
        sim = Simulator(seed=3)
        host = Host(sim, HostSpec(name="h"))
        DiurnalLoad(base=0.0, amplitude=0.2, day_length_s=10.0,
                    jitter=0.5, period_s=0.1).start(sim, host)
        lows = []
        for i in range(200):
            sim.call_at(i * 0.1 + 0.05, lambda: lows.append(host.bg_load))
        sim.run(until=20.0)
        assert min(lows) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalLoad(base=-1.0)
        with pytest.raises(ValueError):
            DiurnalLoad(day_length_s=0.0)

"""Property test: admission order is priority-sorted, FIFO within ties.

Randomized submit sequences (several seeds, no framework — plain
``random.Random``) against the invariant the dispatcher must keep:
when every application is enqueued before the dispatcher first runs,
the admitted order equals the submissions sorted by (priority
descending, arrival index ascending).
"""

import random

from repro.runtime.admission import AdmissionQueue

from tests.runtime.conftest import build_runtime, chain_afg

SEEDS = (0, 1, 2)


def submit_randomized(seed: int, n_apps: int = 8):
    rng = random.Random(seed)
    rt = build_runtime()
    repo = rt.repositories["alpha"]
    priorities = {}
    for level in range(1, 6):
        repo.users.add_user(f"u{level}", "x", priority=level)
    queue = AdmissionQueue(rt, max_concurrent=1)
    signals = []
    for i in range(n_apps):
        level = rng.randint(1, 5)
        name = f"app{i:02d}"
        priorities[name] = level
        signals.append(
            queue.submit(chain_afg(n=1, name=name), f"u{level}")
        )
    return rt, queue, signals, priorities


def drain(rt, signals):
    def waiter():
        for signal in signals:
            yield signal

    rt.sim.run_until_complete(rt.sim.process(waiter()))


class TestAdmissionOrderProperty:
    def test_priority_then_fifo(self):
        for seed in SEEDS:
            rt, queue, signals, priorities = submit_randomized(seed)
            drain(rt, signals)
            names = [f"app{i:02d}" for i in range(len(signals))]
            expected = sorted(
                names, key=lambda n: (-priorities[n], names.index(n))
            )
            assert queue.admitted_order == expected, f"seed {seed}"

    def test_every_submission_admitted_exactly_once(self):
        for seed in SEEDS:
            rt, queue, signals, priorities = submit_randomized(seed)
            drain(rt, signals)
            assert sorted(queue.admitted_order) == sorted(priorities)

    def test_higher_priority_never_waits_behind_lower(self):
        # pairwise: if a higher-priority app was submitted no later, it
        # must be admitted no later either
        for seed in SEEDS:
            rt, queue, signals, priorities = submit_randomized(seed)
            drain(rt, signals)
            position = {n: i for i, n in enumerate(queue.admitted_order)}
            names = sorted(priorities)
            for a in names:
                for b in names:
                    if a < b and priorities[a] > priorities[b]:
                        assert position[a] < position[b], (
                            f"seed {seed}: {a} (prio {priorities[a]}) "
                            f"admitted after {b} (prio {priorities[b]})"
                        )

"""Data-plane integrity (DESIGN §16): hashes, repair ladder, quarantine.

Simulated corruption is a *marker* on the transfer (the pure-evaluation
oracle stays intact: values are never mangled), so every repaired run
must still reproduce ``expected_output_hashes`` byte-for-byte — and a
run whose repair budget is exhausted must fail typed, never deliver.
"""

import itertools

import pytest

from repro.errors import (
    CorruptPayloadError,
    DataIntegrityError,
    PoisonedArtifactError,
)
from repro.runtime import ExecutionError
from repro.runtime.checkpoint import expected_output_hashes, final_output_hashes
from repro.runtime.integrity import IntegrityManager, IntegrityPolicy
from repro.scheduler import AllocationTable, TaskAssignment

from tests.runtime.conftest import build_runtime, chain_afg


def cross_site_table(afg, pattern, predicted=0.5):
    """Manual allocation alternating through ``pattern`` of (site, host)."""
    table = AllocationTable(afg.name, scheduler="manual")
    for task, (site, host) in zip(afg.topological_order(),
                                  itertools.cycle(pattern)):
        table.assign(TaskAssignment(task, site, (host,), predicted))
    return table


def integrity_runtime(policy=None, **kwargs):
    return build_runtime(
        data_integrity=policy or IntegrityPolicy(), **kwargs
    )


class TestIntegrityManagerLedger:
    def test_record_artifact_returns_canonical_hash(self):
        rt = integrity_runtime()
        h1 = rt.integrity.record_artifact("app", "t0", 0, [1, 2, 3], "a1")
        h2 = rt.integrity.record_artifact("other", "t0", 0, [1, 2, 3], "b1")
        assert h1 == h2  # content-based, not identity/location-based
        assert rt.integrity.recorded_hash("app", "t0", 0) == h1

    def test_rerecording_restores_a_lost_artifact(self):
        rt = integrity_runtime()
        rt.integrity.record_artifact("app", "t0", 0, "v", "a1")
        assert rt.integrity.drop_host("a1") == 1
        assert rt.integrity.artifact("app", "t0", 0).lost
        rt.integrity.record_artifact("app", "t0", 0, "v", "b1")
        artifact = rt.integrity.artifact("app", "t0", 0)
        assert not artifact.lost
        assert artifact.host == "b1"

    def test_drop_host_only_counts_live_artifacts(self):
        rt = integrity_runtime()
        rt.integrity.record_artifact("app", "t0", 0, "v", "a1")
        rt.integrity.record_artifact("app", "t1", 0, "w", "a2")
        assert rt.integrity.drop_host("a1") == 1
        assert rt.integrity.drop_host("a1") == 0  # already lost
        assert rt.integrity.artifacts_lost == 1

    def test_poison_marks_every_artifact_of_the_task(self):
        rt = integrity_runtime()
        rt.integrity.record_artifact("app", "t0", 0, "v", "a1")
        rt.integrity.record_artifact("app", "t0", 1, "w", "a1")
        rt.integrity.note_poison("app", "t0", "test")
        assert all(a.poisoned for a in rt.integrity.task_artifacts("app", "t0"))
        assert rt.integrity.poisoned == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            IntegrityPolicy(max_refetches=-1)
        with pytest.raises(ValueError):
            IntegrityPolicy(max_depth=0)


class TestRepairLadder:
    PATTERN = [("alpha", "a1"), ("beta", "b1")]

    def run_chain(self, rt, n=3, edge_mb=0.5):
        afg = chain_afg(n=n, scale=0.5, edge_mb=edge_mb)
        expected = expected_output_hashes(afg, rt.registry)
        table = cross_site_table(afg, self.PATTERN)
        proc = rt.execute_process(afg, table)
        return afg, expected, proc

    def test_clean_run_records_artifacts_and_consumptions(self):
        rt = integrity_runtime()
        afg, expected, proc = self.run_chain(rt)
        result = rt.sim.run_until_complete(proc)
        assert final_output_hashes(result) == expected
        # every task's outputs hashed, every edge consumed clean
        assert rt.integrity.recorded_hash("chain", "t0", 0) is not None
        assert len(rt.integrity.consumption_log) == len(afg.edges)
        assert all(c["clean"] for c in rt.integrity.consumption_log)
        assert rt.integrity.corruptions_detected == 0
        assert rt.integrity.incidents == []

    def test_transient_corruption_is_refetched(self):
        """Corruption armed for a window: detection + refetch, then the
        run completes with oracle-exact outputs."""
        rt = integrity_runtime()
        net = rt.topology.network
        net.set_corruption(0.97)  # first transfers corrupt, then disarm
        rt.sim.call_at(1.2, lambda: net.set_corruption(0.0))
        afg, expected, proc = self.run_chain(rt)
        result = rt.sim.run_until_complete(proc)
        assert final_output_hashes(result) == expected
        assert rt.integrity.corruptions_detected >= 1
        assert rt.integrity.refetches >= 1
        assert all(c["clean"] for c in rt.integrity.consumption_log)
        assert all(
            i["resolution"] in ("refetched", "regenerated")
            for i in rt.integrity.incidents
        )

    def test_permanent_corruption_poisons_and_fails_typed(self):
        rt = integrity_runtime(
            IntegrityPolicy(max_refetches=1, max_regenerations=1)
        )
        rt.topology.network.set_corruption(0.97)
        _afg, _expected, proc = self.run_chain(rt)
        with pytest.raises((DataIntegrityError, ExecutionError)):
            rt.sim.run_until_complete(proc)
        assert rt.integrity.poisoned >= 1
        assert any(
            i["resolution"] == "poisoned" for i in rt.integrity.incidents
        )
        # the damaged bytes were never consumed (I12)
        assert all(c["clean"] for c in rt.integrity.consumption_log)

    def test_regeneration_repairs_past_the_refetch_budget(self):
        """A corruption window longer than the refetch budget forces a
        lineage re-execution; the run still matches the oracle."""
        rt = integrity_runtime(
            IntegrityPolicy(max_refetches=0, max_regenerations=3)
        )
        net = rt.topology.network
        net.set_corruption(0.97)
        rt.sim.call_at(2.5, lambda: net.set_corruption(0.0))
        afg, expected, proc = self.run_chain(rt)
        result = rt.sim.run_until_complete(proc)
        assert final_output_hashes(result) == expected
        assert rt.integrity.regenerations >= 1
        assert any(
            i["resolution"] == "regenerated" for i in rt.integrity.incidents
        )
        # regeneration time is billed to the run, not free
        assert any(
            r.repair_regenerations > 0 for r in result.records.values()
        )

    def lineage_setup(self, policy):
        """t0,t1 on alpha, t2 on beta: only t1->t2 crosses the armed
        WAN.  On the FIRST corruption detection, t0's staged artifact
        is dropped and the link disarmed — so regenerating t1 finds a
        lost upstream input and must recurse to t0 first."""
        rt = integrity_runtime(policy)
        net = rt.topology.network
        afg = chain_afg(n=3, scale=1.0, edge_mb=4.0)
        table = cross_site_table(
            afg, [("alpha", "a1"), ("alpha", "a2"), ("beta", "b1")]
        )
        net.set_corruption(0.97)
        proc = rt.execute_process(afg, table)
        original = rt.integrity.note_corruption
        fired = []

        def on_first_corruption(*args, **kwargs):
            if not fired:
                fired.append(rt.sim.now)
                rt.integrity.drop_host("a1")
                net.set_corruption(0.0)
            return original(*args, **kwargs)

        rt.integrity.note_corruption = on_first_corruption
        return rt, afg, proc

    def test_lost_upstream_recurses_the_lineage_regeneration(self):
        rt, afg, proc = self.lineage_setup(
            IntegrityPolicy(max_refetches=0, max_regenerations=3)
        )
        result = rt.sim.run_until_complete(proc)
        assert final_output_hashes(result) \
            == expected_output_hashes(afg, rt.registry)
        # t1 regenerated at depth 1 AND its lost input t0 at depth 2
        assert rt.integrity.regenerations == 2
        assert rt.integrity.artifacts_lost == 1
        (incident,) = rt.integrity.incidents
        assert incident["resolution"] == "regenerated"
        assert incident["regenerations"] == 2
        assert not rt.integrity.artifact("chain", "t0", 0).lost

    def test_depth_bound_quarantines_deep_lineage(self):
        """Same lost-upstream scenario with max_depth=1: the recursion
        to t0 at depth 2 is forbidden, so the repair poisons instead."""
        rt, _afg, proc = self.lineage_setup(
            IntegrityPolicy(max_refetches=0, max_regenerations=3, max_depth=1)
        )
        with pytest.raises((DataIntegrityError, ExecutionError)):
            rt.sim.run_until_complete(proc)
        assert rt.integrity.poisoned >= 1
        (incident,) = rt.integrity.incidents
        assert incident["resolution"] == "poisoned"


class TestDefaultOffNeutrality:
    def test_fault_free_run_is_hash_identical_with_integrity_armed(self):
        """The feature costs nothing when off AND nothing when armed but
        fault-free: same trace, same metrics, zero corrupt streams."""
        from repro.metrics.registry import MetricsRegistry
        from repro.runtime import RuntimeConfig, VDCERuntime
        from repro.sim import TopologyBuilder
        from repro.trace.serialize import trace_hash
        from repro.trace.tracer import Tracer

        hashes = {}
        for label, policy in (("off", None), ("on", IntegrityPolicy())):
            builder = TopologyBuilder(seed=0).wan_defaults(0.02, 2.0)
            builder.site("alpha", hosts=[("a1", 1.0, 256), ("a2", 2.0, 256)])
            builder.site("beta", hosts=[("b1", 1.5, 256), ("b2", 3.0, 256)])
            rt = VDCERuntime(
                builder.build(),
                config=RuntimeConfig(data_integrity=policy),
                tracer=Tracer(), metrics=MetricsRegistry(),
            )
            afg = chain_afg(n=3)
            table = cross_site_table(afg, [("alpha", "a1"), ("beta", "b1")])
            rt.sim.run_until_complete(rt.execute_process(afg, table))
            # unarmed links never touch their corruption RNG stream —
            # fault-free runs draw zero extra randomness
            assert not [s for s in rt.sim._rngs if s.startswith("corrupt:")]
            hashes[label] = (
                trace_hash(rt.tracer),
                rt.export_metrics().snapshot_hash(),
            )
        assert hashes["off"] == hashes["on"]

    def test_runtime_has_no_manager_when_off(self):
        rt = build_runtime()
        assert rt.integrity is None

"""Scheduling and execution under scripted WAN partitions.

The tentpole behaviours: the site scheduler proceeds with whichever of
the k remote sites answered the AFG multicast before the bid deadline
(degrading to local-only under a full partition), the allocation
distribution moves work off unreachable sites, and an execution in
flight when a partition hits survives by retrying its transfers once
the partition heals.
"""

from repro.scheduler import SiteScheduler

from tests.runtime.conftest import build_runtime, chain_afg

THREE_SITES = {
    "alpha": [("a1", 1.0, 256), ("a2", 1.0, 256)],
    "beta": [("b1", 2.0, 256), ("b2", 2.0, 256)],
    "gamma": [("g1", 3.0, 256), ("g2", 3.0, 256)],
}


def _schedule(rt, afg, k=2):
    def run():
        result = yield from rt.schedule_process(afg, SiteScheduler(k=k))
        return result

    return rt.sim.run_until_complete(rt.sim.process(run()), limit=1e5)


def test_partitioned_site_is_left_out_of_scheduling():
    rt = build_runtime(site_hosts=THREE_SITES)
    # gamma (the fastest site) is cut off from alpha before scheduling
    rt.topology.network.partition([["alpha", "beta"], ["gamma"]])
    afg = chain_afg(n=4, scale=5.0)
    table, _ = _schedule(rt, afg, k=2)
    assert table.is_complete_for(afg)
    assert "gamma" not in table.sites_used()
    # the unreachable site cost one timed-out RPC, visibly
    assert rt.stats.rpc_timeouts >= 1


def test_full_partition_degrades_to_local_only():
    rt = build_runtime(site_hosts=THREE_SITES)
    rt.topology.network.partition([["alpha"], ["beta"], ["gamma"]])
    afg = chain_afg(n=4, scale=5.0)
    table, _ = _schedule(rt, afg, k=2)
    assert table.is_complete_for(afg)
    assert table.sites_used() == ["alpha"]


def test_no_partition_uses_remote_sites():
    """Control: with the WAN healthy the fast remote hosts win work."""
    rt = build_runtime(site_hosts=THREE_SITES)
    afg = chain_afg(n=4, scale=5.0)
    table, _ = _schedule(rt, afg, k=2)
    used = set(table.sites_used())
    assert used & {"beta", "gamma"}


def _manual_cross_site_table(afg, placements):
    from repro.scheduler.allocation import AllocationTable, TaskAssignment

    table = AllocationTable(afg.name, scheduler="manual")
    for task_id, (site, host) in placements.items():
        table.assign(TaskAssignment(task_id, site, (host,), 1.0))
    return table


def test_partition_during_execution_heals_and_app_completes():
    """A partition that hits mid-execution kills cross-site transfers;
    the coordinator re-establishes channels and retries until the WAN
    heals, and the application still completes."""
    rt = build_runtime(site_hosts=THREE_SITES)
    network = rt.topology.network
    afg = chain_afg(n=4, scale=2.0, edge_mb=8.0)  # slow WAN edges
    table = _manual_cross_site_table(afg, {
        "t0": ("alpha", "a1"),
        "t1": ("beta", "b1"),
        "t2": ("beta", "b2"),
        "t3": ("gamma", "g1"),
    })

    from repro.sim import FailureInjector

    injector = FailureInjector(rt.sim)
    start = rt.sim.now + 1.0
    injector.schedule_partition(
        network, [["alpha"], ["beta", "gamma"]], start=start, duration=6.0
    )
    proc = rt.execute_process(afg, table, execute_payloads=False)
    result = rt.sim.run_until_complete(proc, limit=1e5)
    assert result.finished_at > start  # the fault window overlapped
    assert not network.partitioned
    # the alpha->beta dataflow edge had to be retried across the outage
    assert result.transfer_retries >= 1
    assert result.channel_reestablishes >= 1


def test_allocation_moves_tasks_off_unreachable_site():
    """A site that never acknowledges its allocation portion loses its
    tasks to reachable sites before execution starts."""
    rt = build_runtime(site_hosts=THREE_SITES)
    afg = chain_afg(n=4, scale=5.0)
    table, _ = _schedule(rt, afg, k=2)
    remote_sites = [s for s in table.sites_used() if s != "alpha"]
    assert remote_sites  # placement did go remote
    # cut every WAN link touching alpha *after* scheduling, before execution
    rt.topology.network.partition([["alpha"], ["beta", "gamma"]])
    proc = rt.execute_process(afg, table, execute_payloads=False)
    result = rt.sim.run_until_complete(proc, limit=1e5)
    # every task ended up on the only reachable site
    assert {r.site for r in result.records.values()} == {"alpha"}
    assert result.reschedules >= 1
    moved = [r for r in result.records.values() if r.reschedule_reasons]
    assert any("unreachable" in reason
               for r in moved for reason in r.reschedule_reasons)


def test_mid_execution_transfer_retry_telemetry():
    """A link outage during a dataflow transfer surfaces in the
    per-task retry telemetry and the application result dict."""
    rt = build_runtime(site_hosts=THREE_SITES)
    network = rt.topology.network
    afg = chain_afg(n=3, scale=1.0, edge_mb=20.0)  # ~10s WAN transfers
    table = _manual_cross_site_table(afg, {
        "t0": ("alpha", "a1"),
        "t1": ("beta", "b1"),
        "t2": ("gamma", "g1"),
    })

    from repro.sim import FailureInjector

    injector = FailureInjector(rt.sim)
    # break every WAN link briefly, a moment into execution
    t0 = rt.sim.now
    for pair in (("alpha", "beta"), ("alpha", "gamma"), ("beta", "gamma")):
        injector.schedule_link_outage(network.wan_link(*pair),
                                      start=t0 + 3.0, duration=2.0)
    proc = rt.execute_process(afg, table, execute_payloads=False)
    result = rt.sim.run_until_complete(proc, limit=1e5)
    assert result.transfer_retries >= 1
    assert rt.stats.transfer_retries >= 1
    payload = result.to_dict()
    assert payload["transfer_retries"] == result.transfer_retries
    assert payload["channel_reestablishes"] == result.channel_reestablishes
    per_task = sum(t["transfer_retries"] for t in payload["tasks"].values())
    assert per_task == result.transfer_retries

"""Tests: input re-staging when a rescheduled task moves hosts."""

import pytest

from repro.afg import (
    ApplicationFlowGraph,
    FileSpec,
    InputBinding,
    TaskNode,
    TaskProperties,
)
from repro.scheduler import SiteScheduler

from tests.runtime.conftest import build_runtime


def file_task_afg(file_mb=8.0, scale=20.0):
    afg = ApplicationFlowGraph("filey")
    afg.add_task(
        TaskNode(
            id="t",
            task_type="generic.compute",
            n_in_ports=1,
            n_out_ports=1,
            properties=TaskProperties(
                workload_scale=scale,
                inputs=(InputBinding(0, FileSpec("/data/in.dat", file_mb)),),
            ),
        )
    )
    return afg


class TestRestaging:
    def test_file_input_restaged_to_replacement_host(self):
        rt = build_runtime(
            site_hosts={"alpha": [("a1", 4.0, 256), ("a2", 1.0, 256)]}
        )
        afg = file_task_afg(scale=40.0)  # ~10 s on the 4x host
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        assert table.get("t").hosts == ("a1",)
        proc = rt.execute_process(afg, table)
        # crash the original host mid-run; input must be staged again
        rt.sim.call_at(3.0, lambda: rt.topology.host("a1").fail())
        result = rt.sim.run_until_complete(proc)
        assert result.records["t"].hosts == ("a2",)
        # file staged twice: once to a1, once re-staged to a2
        assert rt.io_service.staged_count >= 2

    def test_dataflow_inputs_restaged_with_transfer_cost(self):
        """The re-staging transfer is real: bytes move again."""
        rt = build_runtime(
            site_hosts={"alpha": [("a1", 4.0, 256), ("a2", 1.0, 256),
                                  ("a3", 1.0, 256)]}
        )
        afg = ApplicationFlowGraph("two")
        afg.add_task(TaskNode(id="src", task_type="generic.source",
                              n_out_ports=1,
                              properties=TaskProperties(workload_scale=0.5)))
        afg.add_task(TaskNode(id="snk", task_type="generic.compute",
                              n_in_ports=1, n_out_ports=1,
                              properties=TaskProperties(workload_scale=30.0)))
        afg.connect("src", "snk", size_mb=6.0)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        proc = rt.execute_process(afg, table, execute_payloads=False)
        victim = table.get("snk").hosts[0]
        rt.sim.call_at(3.0, lambda: rt.topology.host(victim).fail())
        result = rt.sim.run_until_complete(proc)
        assert result.records["snk"].attempts == 2
        # original delivery 6 MB + re-staging 6 MB
        assert result.data_transferred_mb == pytest.approx(12.0)

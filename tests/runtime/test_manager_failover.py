"""Tests: Group/Site Manager crashes, deputy failover, bid exclusion."""

import pytest

from repro import VDCE
from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties
from repro.net.rpc import ManagerUnavailable
from repro.runtime.monitor import Measurement
from repro.scheduler import SiteScheduler
from repro.sim import FailureInjector
from repro.trace.events import EventKind
from repro.trace.tracer import Tracer

from tests.runtime.conftest import build_runtime, chain_afg


class TestGroupManagerFailover:
    def build(self, seed=9):
        env = VDCE.standard(
            n_sites=1, hosts_per_site=3, seed=seed, tracer=Tracer()
        )
        env.start_monitoring()
        name = sorted(env.runtime.group_managers)[0]
        return env, env.runtime.group_managers[name]

    def test_monitors_promote_a_deputy_after_a_crash(self):
        env, gm = self.build()
        injector = FailureInjector(env.sim)
        injector.schedule_group_manager_crash(gm, time=2.0)
        env.sim.run(until=10.0)
        # a surviving Monitor daemon noticed and requested failover
        assert gm.alive
        assert gm.failovers == 1
        assert env.runtime.stats.failovers == 1
        assert gm.deputy_host in gm.host_names
        kinds = [e.kind for e in env.tracer.events()]
        assert EventKind.MANAGER_CRASH in kinds
        assert EventKind.FAILOVER in kinds

    def test_failover_happens_once_not_per_monitor(self):
        """Every Monitor in the group notices; only one deputy is promoted."""
        env, gm = self.build()
        injector = FailureInjector(env.sim)
        injector.schedule_group_manager_crash(gm, time=2.0)
        env.sim.run(until=30.0)
        assert gm.failovers == 1
        assert env.runtime.stats.failovers == 1

    def test_deputy_election_is_deterministic(self):
        deputies = set()
        for _ in range(2):
            env, gm = self.build(seed=9)
            injector = FailureInjector(env.sim)
            injector.schedule_group_manager_crash(gm, time=2.0)
            env.sim.run(until=10.0)
            deputies.add(gm.deputy_host)
        assert len(deputies) == 1

    def test_echo_detection_still_works_after_failover(self):
        env, gm = self.build()
        injector = FailureInjector(env.sim)
        injector.schedule_group_manager_crash(gm, time=2.0)
        env.sim.run(until=10.0)
        assert gm.alive
        victim = sorted(gm.host_names - {gm.deputy_host})[0]
        env.topology.host(victim).fail()
        env.sim.run(until=40.0)
        assert not gm.believes_up(victim)
        assert any(h == victim for _t, h, _k in env.runtime.stats.detection_log)

    def test_no_orphaned_group_after_failover(self):
        """Chaos invariant I6 in miniature: after a GM crash + failover,
        every host still belongs to exactly one live Group Manager."""
        env, gm = self.build()
        injector = FailureInjector(env.sim)
        injector.schedule_group_manager_crash(gm, time=2.0)
        env.sim.run(until=10.0)
        owners = {}
        for name, manager in env.runtime.group_managers.items():
            assert manager.alive
            for host in manager.host_names:
                owners.setdefault(host, []).append(name)
        for host in env.topology.all_hosts:
            assert len(owners.get(host.name, [])) == 1

    def test_timed_crash_recovers_without_failover(self):
        """With a duration the original GM comes back before any monitor
        can promote a deputy only if recovery precedes the next tick —
        either way the group ends owned by exactly one live manager."""
        env, gm = self.build()
        injector = FailureInjector(env.sim)
        injector.schedule_group_manager_crash(gm, time=2.0, duration=0.5)
        env.sim.run(until=10.0)
        assert gm.alive
        kinds = [e.kind for e in env.tracer.events()]
        assert EventKind.MANAGER_RECOVER in kinds or EventKind.FAILOVER in kinds

    def test_crashed_gm_ignores_measurements(self):
        # no monitors running: nobody can promote a deputy, so the
        # manager stays crashed and must drop incoming reports
        env = VDCE.standard(n_sites=1, hosts_per_site=3, seed=9)
        gm = env.runtime.group_managers[
            sorted(env.runtime.group_managers)[0]
        ]
        gm.crash()
        host = sorted(gm.host_names)[0]
        before = env.runtime.stats.workload_forwards
        gm.receive_measurement(
            Measurement(host=host, load=9.9, available_memory_mb=1,
                        measured_at=env.sim.now)
        )
        assert env.runtime.stats.workload_forwards == before


class TestSiteManagerCrash:
    def build_two_sites(self):
        # beta's hosts are much faster: a k=1 schedule from alpha
        # normally places the chain there
        return build_runtime(
            site_hosts={
                "alpha": [("a1", 1.0, 256), ("a2", 1.0, 256)],
                "beta": [("b1", 8.0, 256), ("b2", 8.0, 256)],
            }
        )

    def test_crashed_site_is_excluded_from_bidding(self):
        rt = self.build_two_sites()
        afg = chain_afg(n=3)
        baseline = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        assert "beta" in baseline.sites_used()

        rt.site_managers["beta"].crash()
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        assert table.sites_used() == ["alpha"]

    def test_recovered_site_bids_again(self):
        rt = self.build_two_sites()
        afg = chain_afg(n=3)
        rt.site_managers["beta"].crash()
        rt.site_managers["beta"].recover()
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        assert "beta" in table.sites_used()

    def test_crashed_sm_buffers_reports_and_replays_on_recover(self):
        rt = build_runtime()
        sm = rt.site_managers["alpha"]
        sm.crash()
        sm.receive_failure("a1")
        # while crashed nothing reaches the resource DB
        assert sm.repository.resources.get("a1").up
        sm.recover()
        assert not sm.repository.resources.get("a1").up
        sm.receive_recovery("a1")
        assert sm.repository.resources.get("a1").up

    def test_crashed_sm_raises_typed_error_on_allocation(self):
        rt = build_runtime()
        sm = rt.site_managers["alpha"]
        sm.crash()
        afg = ApplicationFlowGraph("x")
        afg.add_task(TaskNode(id="t", task_type="generic.source",
                              n_out_ports=1,
                              properties=TaskProperties(workload_scale=1.0)))
        with pytest.raises(ManagerUnavailable, match="site manager"):
            sm.handle_scheduling_request(afg)

    def test_crashed_sm_never_bids_on_reselect(self):
        rt = build_runtime()
        sm = rt.site_managers["alpha"]
        afg = chain_afg(n=2)
        sm.crash()
        assert sm.reselect_host(afg, "t0", frozenset(), rt.model) is None

"""Speculative re-execution and host-health quarantine.

The headline scenario: the fastest host in the federation is slowed
10x mid-schedule.  Without speculation every task placed there crawls;
with speculation a backup launches on the next-best host, wins the
race, and the application finishes at least twice as fast — with
terminal outputs byte-identical to the pure-evaluation oracle no
matter which copy won.
"""

import pytest

from repro.runtime.checkpoint import expected_output_hashes, final_output_hashes
from repro.runtime.execution import ExecutionCoordinator
from repro.runtime.straggler import (
    HealthPolicy,
    HostHealth,
    RatioTracker,
    SpeculationPolicy,
)

from tests.runtime.conftest import build_runtime, chain_afg

_POLICY = SpeculationPolicy(trigger_multiple=1.5, check_period_s=0.5)


def _host(rt, name):
    for host in rt.topology.all_hosts:
        if host.name == name:
            return host
    raise AssertionError(f"no host {name!r}")


def _run_with_slowdown(seed, speculation):
    """Slow the fastest host (b2, speed 3.0 — the one prediction loves)
    by 10x before submitting a chain; return (runtime, result)."""
    rt = build_runtime(seed=seed, speculation=speculation)
    _host(rt, "b2").set_slowdown(10.0)
    afg = chain_afg(n=3, scale=2.0, name=f"straggled-{seed}")
    result = rt.submit(afg)
    return rt, afg, result


class TestSpeculationRace:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_speculation_halves_makespan_and_preserves_outputs(self, seed):
        _, _, baseline = _run_with_slowdown(seed, speculation=None)
        rt, afg, raced = _run_with_slowdown(seed, speculation=_POLICY)
        assert baseline.makespan / raced.makespan >= 2.0
        assert rt.stats.speculative_launches >= 1
        assert rt.stats.speculative_wins >= 1
        # speculation safety: outputs identical to the pure evaluation
        assert final_output_hashes(raced) == expected_output_hashes(
            afg, rt.registry
        )

    def test_backup_win_repoints_the_record_off_the_straggler(self):
        rt, _, result = _run_with_slowdown(0, speculation=_POLICY)
        raced_hosts = {
            host for record in result.records.values() for host in record.hosts
        }
        assert rt.stats.speculative_wins >= 1
        # at least one winning backup ran somewhere other than b2
        assert raced_hosts - {"b2"}

    def test_disabled_speculation_never_launches(self):
        rt, _, _ = _run_with_slowdown(0, speculation=None)
        assert rt.stats.speculative_launches == 0
        assert rt.stats.speculative_wins == 0
        assert rt.stats.speculative_wasted_s == 0.0

    def test_no_speculation_without_a_straggler(self):
        rt = build_runtime(speculation=_POLICY)
        result = rt.submit(chain_afg(n=3, scale=2.0, name="healthy"))
        assert rt.stats.speculative_launches == 0
        assert result.makespan > 0

    def test_bounded_waste_one_backup_per_task_all_resolved(self):
        # drive the coordinator explicitly to read its speculation log
        rt = build_runtime(speculation=_POLICY)
        _host(rt, "b2").set_slowdown(10.0)
        afg = chain_afg(n=3, scale=2.0, name="audited")

        def pipeline():
            table, _ = yield from rt.schedule_process(afg)
            coordinator = ExecutionCoordinator(rt, afg, table)
            result = yield coordinator.start()
            return coordinator, result

        coordinator, result = rt.sim.run_until_complete(
            rt.sim.process(pipeline())
        )
        log = coordinator.speculation_log
        assert len(log) == rt.stats.speculative_launches >= 1
        keys = [(e["application"], e["task"], e["attempt"]) for e in log]
        assert len(keys) == len(set(keys))  # ≤ 1 backup per task attempt
        for entry in log:
            assert entry["outcome"] in ("primary_win", "backup_win", "failed")
            assert entry["resolved_at"] is not None
            assert entry["resolved_at"] >= entry["launched_at"]
        wins = sum(1 for e in log if e["outcome"] == "backup_win")
        assert wins == rt.stats.speculative_wins
        # the race loser's burned compute is accounted as waste
        if wins:
            assert rt.stats.speculative_wasted_s > 0.0


class TestRatioTracker:
    def test_quantile_none_until_recorded(self):
        tracker = RatioTracker()
        assert tracker.quantile("h", 0.75) is None

    def test_quantile_orders_and_windows(self):
        tracker = RatioTracker(window=4)
        for ratio in (1.0, 3.0, 2.0, 8.0, 4.0):  # 1.0 falls out of window
            tracker.record("h", ratio)
        assert tracker.quantile("h", 0.0) == 2.0
        assert tracker.quantile("h", 0.75) == 8.0

    def test_nonpositive_ratios_ignored(self):
        tracker = RatioTracker()
        tracker.record("h", 0.0)
        tracker.record("h", -1.0)
        assert tracker.quantile("h", 0.5) is None


class TestHostHealth:
    def _health(self, **kwargs):
        from repro.sim import Simulator

        sim = Simulator()
        policy = HealthPolicy(**kwargs)
        return sim, HostHealth(sim, policy)

    def test_penalties_accumulate_into_the_predict_factor(self):
        _, health = self._health()
        assert health.factor_of("h") == 1.0
        health.penalize("h", 0.5, "suspect")
        assert health.factor_of("h") == pytest.approx(1.5)

    def test_score_decays_with_half_life(self):
        sim, health = self._health(half_life_s=10.0)
        health.penalize("h", 2.0, "suspect")
        sim.call_at(10.0, lambda: None)
        sim.run()
        assert health.score_of("h") == pytest.approx(1.0)

    def test_quarantine_at_threshold_then_probation_release(self):
        sim, health = self._health(quarantine_threshold=3.0, probation_s=50.0)
        health.penalize("h", 3.0, "failure")
        assert health.is_quarantined("h")
        assert health.factor_of("h") is None  # excluded from selection
        assert health.quarantined_hosts() == ["h"]
        sim.call_at(60.0, lambda: None)
        sim.run()
        factor = health.factor_of("h")  # lazy probation release
        assert factor is not None
        assert not health.is_quarantined("h")
        # released on probation: score restarts at half the threshold
        assert factor == pytest.approx(1.0 + 1.5)


class TestQuarantineScheduling:
    def test_quarantined_host_excluded_from_placement(self):
        rt = build_runtime(health=HealthPolicy(quarantine_threshold=3.0,
                                               probation_s=1000.0))
        rt.health.penalize("b2", 5.0, "test")
        result = rt.submit(chain_afg(n=3, scale=1.0, name="avoids-b2"))
        used = {h for r in result.records.values() for h in r.hosts}
        assert "b2" not in used

    def test_health_penalty_steers_prediction_away(self):
        # b2 (speed 3.0) normally wins every bid; a 1.0 score doubles
        # its predictions, so slower-but-clean hosts win instead
        rt = build_runtime(health=HealthPolicy(half_life_s=1e9))
        rt.health.penalize("b2", 1.0, "test")
        result = rt.submit(chain_afg(n=3, scale=1.0, name="steered"))
        primaries = {r.hosts[0] for r in result.records.values()}
        assert "b2" not in primaries

    def test_clean_slate_uses_the_fast_host(self):
        rt = build_runtime(health=HealthPolicy())
        result = rt.submit(chain_afg(n=3, scale=1.0, name="clean"))
        used = {h for r in result.records.values() for h in r.hosts}
        assert "b2" in used

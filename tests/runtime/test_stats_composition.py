"""Tests: the control-message total is the exact sum of its parts.

Regression pin for a long-standing undercount: ``failure_restarts``
(the restart message the replacement host receives) was missing from
:meth:`RuntimeStats.total_control_messages`, so faulty runs reported
less control traffic than they generated.
"""

from repro.runtime.stats import RuntimeStats

# every counter that is a control-plane message, with a distinct prime
# so a dropped or double-counted term changes the sum detectably
_CONTROL_FIELDS = {
    "monitor_reports": 2,
    "workload_forwards": 3,
    "echo_packets": 5,
    "failure_notifications": 7,
    "recovery_notifications": 11,
    "allocation_messages": 13,
    "execution_requests": 17,
    "channel_setups": 19,
    "channel_acks": 23,
    "startup_signals": 29,
    "reschedule_requests": 31,
    "failure_restarts": 37,
    "scheduler_messages": 41,
}

# counted elsewhere (payload data plane, diagnostics, checkpointing) —
# must NOT contribute to the control-message total
_NON_CONTROL_FIELDS = {
    "workload_suppressed": 43,
    "data_transfers": 47,
    "rpc_retries": 53,
    "rpc_timeouts": 59,
    "transfer_retries": 61,
    "channel_reestablishes": 67,
    "taskperf_updates": 71,
    "failovers": 73,
    "checkpoint_records": 79,
    "resumes": 83,
    "speculative_launches": 89,
    "speculative_wins": 97,
}


class TestTotalControlMessages:
    def test_composition_is_exactly_the_control_fields(self):
        stats = RuntimeStats(**_CONTROL_FIELDS, **_NON_CONTROL_FIELDS)
        assert stats.total_control_messages() == sum(_CONTROL_FIELDS.values())

    def test_failure_restarts_are_counted(self):
        stats = RuntimeStats(failure_restarts=7)
        assert stats.total_control_messages() == 7

    def test_each_control_field_contributes_exactly_once(self):
        for field_name in _CONTROL_FIELDS:
            stats = RuntimeStats(**{field_name: 1})
            assert stats.total_control_messages() == 1, field_name

    def test_non_control_fields_contribute_nothing(self):
        stats = RuntimeStats(**_NON_CONTROL_FIELDS)
        assert stats.total_control_messages() == 0

    def test_as_dict_mirrors_the_total(self):
        stats = RuntimeStats(**_CONTROL_FIELDS)
        assert stats.as_dict()["total_control_messages"] \
            == stats.total_control_messages()

"""WAN circuit breakers: trip, fast-fail, half-open probe, audit log."""

import pytest

from repro.net.rpc import (
    BreakerPolicy,
    BreakerRegistry,
    CircuitBreaker,
    CircuitOpenError,
    ControlPlane,
    RpcTimeout,
)
from repro.runtime.stats import RuntimeStats
from repro.sim import TopologyBuilder


def _topo(seed=0):
    builder = TopologyBuilder(seed=seed).wan_defaults(0.02, 2.0)
    builder.site("alpha", hosts=[("a1", 1.0, 256)])
    builder.site("beta", hosts=[("b1", 1.0, 256)])
    return builder.build()


def _drive(sim, gen):
    """Run an RPC generator to completion, returning (value, error)."""
    box = {}

    def proc():
        try:
            box["value"] = yield from gen
        except RpcTimeout as exc:
            box["error"] = exc

    p = sim.process(proc())
    sim.run_until_complete(p, limit=1e6)
    return box.get("value"), box.get("error")


def _breaker_setup(seed=0, **policy_kwargs):
    topo = _topo(seed)
    registry = BreakerRegistry(topo.sim, BreakerPolicy(**policy_kwargs))
    control = ControlPlane(
        topo.sim, topo.network, stats=RuntimeStats(), breakers=registry
    )
    return topo, registry, control


class TestPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            BreakerPolicy(window=0)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0.0)
        with pytest.raises(ValueError):
            BreakerPolicy(min_samples=7, window=6)
        with pytest.raises(ValueError):
            BreakerPolicy(open_duration_s=0.0)


class TestTripAndFastFail:
    def test_repeated_failures_open_the_breaker(self):
        topo, registry, control = _breaker_setup()
        topo.network.wan_link("alpha", "beta").fail()
        # one request = 4 failed attempts under the default RetryPolicy,
        # exactly min_samples failures at 100% failure rate
        value, error = _drive(
            topo.sim, control.request("a1", "b1", lambda: 1, label="x")
        )
        assert isinstance(error, RpcTimeout)
        assert registry.of("alpha", "beta").state == "open"
        assert [s for _, _, _, s in registry.transitions] == ["open"]

    def test_open_circuit_fast_fails_without_burning_time(self):
        topo, registry, control = _breaker_setup()
        topo.network.wan_link("alpha", "beta").fail()
        _drive(topo.sim, control.request("a1", "b1", lambda: 1, label="x"))
        before = topo.sim.now
        value, error = _drive(
            topo.sim, control.request("a1", "b1", lambda: 2, label="y")
        )
        assert isinstance(error, CircuitOpenError)
        assert error.attempts == 0
        assert topo.sim.now == before  # nothing went on the wire
        assert registry.fast_fails >= 1

    def test_healthy_link_never_trips(self):
        topo, registry, control = _breaker_setup()
        for i in range(6):
            value, error = _drive(
                topo.sim,
                control.request("a1", "b1", lambda: i,
                                payload_mb=0.01, reply_mb=0.01),
            )
            assert error is None
        assert registry.of("alpha", "beta").state == "closed"
        assert registry.transitions == []
        assert registry.fast_fails == 0


class TestHalfOpenProbe:
    def _trip(self, topo, control):
        topo.network.wan_link("alpha", "beta").fail()
        _drive(topo.sim, control.request("a1", "b1", lambda: 1, label="t"))

    def test_probe_success_closes_the_circuit(self):
        topo, registry, control = _breaker_setup(open_duration_s=10.0)
        self._trip(topo, control)
        topo.network.wan_link("alpha", "beta").recover()
        topo.sim.run(until=topo.sim.now + 10.0)
        value, error = _drive(
            topo.sim,
            control.request("a1", "b1", lambda: "ok",
                            payload_mb=0.01, reply_mb=0.01),
        )
        assert error is None and value == "ok"
        assert registry.of("alpha", "beta").state == "closed"
        states = [s for _, _, _, s in registry.transitions]
        assert states == ["open", "half_open", "closed"]

    def test_probe_failure_reopens(self):
        topo, registry, control = _breaker_setup(open_duration_s=10.0)
        self._trip(topo, control)
        topo.sim.run(until=topo.sim.now + 10.0)  # link still down
        value, error = _drive(
            topo.sim, control.request("a1", "b1", lambda: 1, label="p")
        )
        # the probe attempt fails and re-opens; the retry loop's next
        # attempt then fast-fails on the freshly opened circuit
        assert isinstance(error, RpcTimeout)
        assert registry.of("alpha", "beta").state == "open"
        states = [s for _, _, _, s in registry.transitions]
        assert states == ["open", "half_open", "open"]

    def test_before_open_duration_requests_still_fast_fail(self):
        topo, registry, control = _breaker_setup(open_duration_s=50.0)
        self._trip(topo, control)
        topo.network.wan_link("alpha", "beta").recover()
        topo.sim.run(until=topo.sim.now + 10.0)  # < open_duration_s
        value, error = _drive(
            topo.sim, control.request("a1", "b1", lambda: 1, label="e")
        )
        assert isinstance(error, CircuitOpenError)


class TestRegistryBookkeeping:
    def test_of_is_lazy_and_per_directed_link(self):
        topo = _topo()
        registry = BreakerRegistry(topo.sim)
        assert registry._breakers == {}
        ab = registry.of("alpha", "beta")
        ba = registry.of("beta", "alpha")
        assert ab is not ba
        assert registry.of("alpha", "beta") is ab

    def test_send_log_records_every_wire_message(self):
        topo, registry, control = _breaker_setup()
        _drive(
            topo.sim,
            control.request("a1", "b1", lambda: 1,
                            payload_mb=0.01, reply_mb=0.01),
        )
        assert registry.send_log == [(0.0, "alpha", "beta")]

    def test_open_violations_empty_in_correct_operation(self):
        topo, registry, control = _breaker_setup(open_duration_s=10.0)
        topo.network.wan_link("alpha", "beta").fail()
        _drive(topo.sim, control.request("a1", "b1", lambda: 1, label="a"))
        _drive(topo.sim, control.request("a1", "b1", lambda: 2, label="b"))
        topo.network.wan_link("alpha", "beta").recover()
        topo.sim.run(until=topo.sim.now + 10.0)
        _drive(
            topo.sim,
            control.request("a1", "b1", lambda: 3,
                            payload_mb=0.01, reply_mb=0.01),
        )
        # sends happened while closed and as the half-open probe; the
        # open window itself stayed silent
        assert registry.open_violations(topo.sim.now) == []
        intervals = registry.open_intervals(topo.sim.now)
        assert len(intervals[("alpha", "beta")]) == 1

    def test_unfinished_open_window_extends_to_end_time(self):
        topo, registry, control = _breaker_setup()
        topo.network.wan_link("alpha", "beta").fail()
        _drive(topo.sim, control.request("a1", "b1", lambda: 1, label="a"))
        (start, end), = registry.open_intervals(topo.sim.now + 100.0)[
            ("alpha", "beta")
        ]
        assert end == topo.sim.now + 100.0


class TestStateMachineUnit:
    def test_window_slides_and_mixed_results_count(self):
        breaker = CircuitBreaker(
            BreakerPolicy(window=4, failure_threshold=0.5, min_samples=4)
        )
        for _ in range(3):
            breaker.record_closed_success()
        assert breaker.record_failure(1.0) is False  # 1/4 failures
        assert breaker.state == "closed"
        assert breaker.record_failure(2.0) is True  # 2/4 = threshold
        assert breaker.state == "open"
        assert breaker.opened_at == 2.0

    def test_same_site_requests_bypass_the_breaker(self):
        builder = TopologyBuilder(seed=0).wan_defaults(0.02, 2.0)
        builder.site("alpha", hosts=[("a1", 1.0, 256), ("a2", 1.0, 256)])
        builder.site("beta", hosts=[("b1", 1.0, 256)])
        topo = builder.build()
        registry = BreakerRegistry(topo.sim, BreakerPolicy())
        control = ControlPlane(
            topo.sim, topo.network, stats=RuntimeStats(), breakers=registry
        )
        value, error = _drive(
            topo.sim,
            control.request("a1", "a2", lambda: 7,
                            payload_mb=0.01, reply_mb=0.01),
        )
        assert error is None and value == 7
        assert registry.send_log == []  # LAN traffic is not breaker-gated

"""Tests for monitors, group managers and site managers (paper §4.1)."""

import pytest

from repro.runtime import RuntimeConfig
from repro.sim import ConstantLoad, TraceLoad

from tests.runtime.conftest import build_runtime


class TestMonitoringPath:
    def test_workload_reaches_resource_db(self):
        rt = build_runtime(monitor_period_s=1.0)
        rt.topology.host("a1").set_bg_load(1.7)
        rt.start_monitoring()
        rt.sim.run(until=1.5)
        rec = rt.repositories["alpha"].resources.get("a1")
        assert rec.load == pytest.approx(1.7)
        assert rec.updated_at >= 0.0

    def test_monitor_reports_counted(self):
        rt = build_runtime(monitor_period_s=1.0)
        rt.start_monitoring()
        rt.sim.run(until=5.5)
        # 4 hosts x 6 measurement ticks (t=0..5)
        assert rt.stats.monitor_reports == 4 * 6

    def test_constant_load_is_suppressed_after_first_report(self):
        rt = build_runtime(monitor_period_s=1.0, change_threshold=0.25)
        for host in rt.topology.all_hosts:
            ConstantLoad(level=0.5, period_s=10.0).start(rt.sim, host)
        rt.start_monitoring()
        rt.sim.run(until=10.5)
        # only the first measurement per host is forwarded
        assert rt.stats.workload_forwards == 4
        assert rt.stats.workload_suppressed == rt.stats.monitor_reports - 4

    def test_significant_change_forwarded(self):
        rt = build_runtime(monitor_period_s=1.0, change_threshold=0.25)
        host = rt.topology.host("a1")
        # load jumps by 1.0 at t=3 (trace period 1s: 0,0,0,1,1,...)
        TraceLoad([0.0, 0.0, 0.0, 1.0, 1.0, 1.0], period_s=1.0).start(rt.sim, host)
        rt.start_monitoring()
        rt.sim.run(until=6.5)
        forwards_for_a1 = 2  # initial 0.0 and the jump to 1.0
        # can't isolate per-host counters directly; check DB state instead
        assert rt.repositories["alpha"].resources.get("a1").load == pytest.approx(1.0)
        assert rt.stats.workload_forwards >= forwards_for_a1

    def test_zero_threshold_forwards_everything(self):
        rt = build_runtime(monitor_period_s=1.0, change_threshold=0.0)
        rt.start_monitoring()
        rt.sim.run(until=4.5)
        assert rt.stats.workload_suppressed == 0
        assert rt.stats.workload_forwards == rt.stats.monitor_reports

    def test_monitoring_cannot_start_twice(self):
        rt = build_runtime()
        rt.start_monitoring()
        with pytest.raises(RuntimeError):
            rt.start_monitoring()


class TestFailureDetection:
    def test_failure_detected_within_one_echo_period(self):
        rt = build_runtime(echo_period_s=2.0)
        rt.start_monitoring()
        rt.sim.call_at(3.0, lambda: rt.topology.host("b1").fail())
        rt.sim.run(until=10.0)
        db = rt.repositories["beta"].resources
        assert not db.get("b1").up
        detections = [e for e in rt.stats.detection_log if e[1] == "b1"]
        assert detections and detections[0][2] == "down"
        # failed at t=3, next echo tick at t=4
        assert 3.0 <= detections[0][0] <= 5.0

    def test_recovery_detected(self):
        rt = build_runtime(echo_period_s=2.0)
        rt.start_monitoring()
        host = rt.topology.host("b1")
        rt.sim.call_at(3.0, host.fail)
        rt.sim.call_at(7.0, host.recover)
        rt.sim.run(until=12.0)
        assert rt.repositories["beta"].resources.get("b1").up
        kinds = [e[2] for e in rt.stats.detection_log if e[1] == "b1"]
        assert kinds == ["down", "up"]
        assert rt.stats.failure_notifications == 1
        assert rt.stats.recovery_notifications == 1

    def test_echo_packets_counted(self):
        rt = build_runtime(echo_period_s=1.0)
        rt.start_monitoring()
        rt.sim.run(until=3.5)
        # 4 hosts x 3 echo rounds (t=1,2,3)
        assert rt.stats.echo_packets == 12

    def test_detection_latency_scales_with_echo_period(self):
        latencies = {}
        for period in (1.0, 8.0):
            rt = build_runtime(echo_period_s=period)
            rt.start_monitoring()
            rt.sim.call_at(0.5, lambda rt=rt: rt.topology.host("a1").fail())
            rt.sim.run(until=30.0)
            first = [e for e in rt.stats.detection_log if e[1] == "a1"][0]
            latencies[period] = first[0] - 0.5
        assert latencies[8.0] > latencies[1.0]


class TestSiteManager:
    def test_scheduler_messages_counted_by_schedule_process(self):
        from repro.scheduler import SiteScheduler

        rt = build_runtime()
        from tests.runtime.conftest import chain_afg

        afg = chain_afg()

        def run():
            table, elapsed = yield from rt.schedule_process(
                afg, SiteScheduler(k=1)
            )
            return table, elapsed

        table, elapsed = rt.sim.run_until_complete(rt.sim.process(run()))
        assert table.is_complete_for(afg)
        # one AFG multicast + one bid reply to/from the single neighbor
        assert rt.stats.scheduler_messages == 2
        assert elapsed > 0.0

    def test_schedule_k0_exchanges_no_messages(self):
        from repro.scheduler import SiteScheduler
        from tests.runtime.conftest import chain_afg

        rt = build_runtime()
        afg = chain_afg()

        def run():
            result = yield from rt.schedule_process(afg, SiteScheduler(k=0))
            return result

        table, elapsed = rt.sim.run_until_complete(rt.sim.process(run()))
        assert rt.stats.scheduler_messages == 0
        assert elapsed == pytest.approx(0.0)
        assert table.sites_used() == ["alpha"]

"""Tests: the checkpoint journal's crash-consistency and value hashing."""

import json

import numpy as np
import pytest

from repro.errors import JournalCorruptError
from repro.runtime.checkpoint import (
    ApplicationCheckpoint,
    CheckpointJournal,
    decode_value,
    encode_value,
    value_hash,
)


class TestJournalRoundTrip:
    def test_records_survive_a_disk_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path)
        journal.append("schedule", application="app", table={"k": 1})
        journal.append("task_complete", task="t0", outputs=[])
        assert CheckpointJournal.read(path) == journal.records()
        # a second handle sees the same stream and appends after it
        reopened = CheckpointJournal(path)
        assert reopened.records() == journal.records()
        reopened.append("reschedule", task="t1", reason="host down")
        assert [r["kind"] for r in CheckpointJournal.read(path)] == [
            "schedule", "task_complete", "reschedule",
        ]

    def test_append_returns_bytes_and_accumulates(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path)
        n = journal.append("schedule", application="app")
        assert n > 0
        assert journal.bytes_written == n
        assert (tmp_path / "journal.jsonl").stat().st_size == n

    def test_memory_only_journal_keeps_records_without_a_file(self):
        journal = CheckpointJournal(None)
        journal.append("schedule", application="app")
        assert len(journal.records()) == 1
        assert journal.bytes_written > 0

    def test_disabled_journal_appends_nothing(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path, enabled=False)
        assert journal.append("schedule", application="app") == 0
        assert journal.records() == []
        assert not (tmp_path / "journal.jsonl").exists()


class TestCrashConsistency:
    def test_torn_tail_is_dropped_on_read(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path)
        journal.append("schedule", application="app")
        journal.append("task_complete", task="t0", outputs=[])
        with open(path, "ab") as fh:
            fh.write(b'{"kind":"task_complete","task":"t1"')  # crash mid-append
        records = CheckpointJournal.read(path)
        assert [r["kind"] for r in records] == ["schedule", "task_complete"]
        assert records[1]["task"] == "t0"

    def test_reopening_truncates_the_torn_tail_before_appending(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        CheckpointJournal(path).append("schedule", application="app")
        good_size = (tmp_path / "journal.jsonl").stat().st_size
        with open(path, "ab") as fh:
            fh.write(b'{"kind":"resched')
        reopened = CheckpointJournal(path)
        assert (tmp_path / "journal.jsonl").stat().st_size == good_size
        reopened.append("reschedule", task="t0", reason="host down")
        # the post-crash stream parses cleanly end to end
        assert [r["kind"] for r in CheckpointJournal.read(path)] == [
            "schedule", "reschedule",
        ]

    def test_corrupt_interior_line_aborts_the_read_loudly(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path)
        journal.append("schedule", application="app")
        journal.append("task_complete", task="t0", outputs=[])
        journal.append("task_complete", task="t1", outputs=[])
        lines = (tmp_path / "journal.jsonl").read_bytes().splitlines(True)
        # flip bits inside the middle record's body: its crc no longer matches
        lines[1] = lines[1].replace(b'"t0"', b'"tX"')
        (tmp_path / "journal.jsonl").write_bytes(b"".join(lines))
        # a valid record AFTER the bad line proves in-place damage, not
        # a torn append — resuming from a silently shortened history
        # would be wrong, so the read must refuse, loudly and typed
        with pytest.raises(JournalCorruptError) as excinfo:
            CheckpointJournal.read(path)
        assert excinfo.value.record_index == 1

    def test_corrupt_tail_line_is_truncated_quietly(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path)
        journal.append("schedule", application="app")
        journal.append("task_complete", task="t0", outputs=[])
        journal.append("task_complete", task="t1", outputs=[])
        lines = (tmp_path / "journal.jsonl").read_bytes().splitlines(True)
        # damage the LAST record only: indistinguishable from a torn
        # append mid-crash, so the valid prefix is still trustworthy
        lines[2] = lines[2].replace(b'"t1"', b'"tX"')
        (tmp_path / "journal.jsonl").write_bytes(b"".join(lines))
        records = CheckpointJournal.read(path)
        assert [r["kind"] for r in records] == ["schedule", "task_complete"]

    def test_every_line_is_valid_json_with_a_crc(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = CheckpointJournal(path)
        journal.append("schedule", application="app")
        journal.append("task_complete", task="t0", outputs=[])
        for raw in (tmp_path / "journal.jsonl").read_text().splitlines():
            assert "crc" in json.loads(raw)


class TestValueHashing:
    def test_hash_is_content_based_not_identity_based(self):
        a = [np.arange(6, dtype=np.float64).reshape(2, 3), {"x": 1.5}]
        b = [np.arange(6, dtype=np.float64).reshape(2, 3), {"x": 1.5}]
        assert value_hash(a) == value_hash(b)

    def test_hash_distinguishes_dtype_shape_and_value(self):
        base = np.arange(6, dtype=np.float64)
        assert value_hash(base) != value_hash(base.astype(np.float32))
        assert value_hash(base) != value_hash(base.reshape(2, 3))
        other = base.copy()
        other[0] += 1.0
        assert value_hash(base) != value_hash(other)

    def test_dict_hash_ignores_insertion_order(self):
        assert value_hash({"a": 1, "b": 2}) == value_hash({"b": 2, "a": 1})

    def test_scalar_types_are_tagged_apart(self):
        # 1 vs 1.0 vs True vs "1" must not collide
        hashes = {value_hash(v) for v in (1, 1.0, True, "1", b"1", None)}
        assert len(hashes) == 6

    def test_encode_decode_round_trips_arrays(self):
        value = {"grid": np.linspace(0.0, 1.0, 7), "meta": ("ok", 3)}
        decoded = decode_value(encode_value(value))
        np.testing.assert_array_equal(decoded["grid"], value["grid"])
        assert decoded["meta"] == value["meta"]
        assert value_hash(decoded) == value_hash(value)


class TestApplicationCheckpoint:
    def test_journal_without_schedule_record_is_rejected(self):
        with pytest.raises(ValueError, match="no schedule record"):
            ApplicationCheckpoint.from_records([])
        with pytest.raises(ValueError, match="no schedule record"):
            ApplicationCheckpoint.from_records(
                [{"kind": "task_complete", "task": "t0"}]
            )

"""Tests for result serialisation and the I/O service's URL flavour."""

import json

import pytest

from repro.afg import (
    ApplicationFlowGraph,
    FileSpec,
    InputBinding,
    TaskNode,
    TaskProperties,
)
from repro.runtime import StagedFile
from repro.scheduler import SiteScheduler

from tests.runtime.conftest import build_runtime, chain_afg


class TestResultSerialisation:
    def run(self):
        rt = build_runtime()
        afg = chain_afg(n=3, scale=1.5)
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        return rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )

    def test_to_dict_is_json_safe_and_complete(self):
        result = self.run()
        data = result.to_dict()
        text = json.dumps(data)  # must not raise
        restored = json.loads(text)
        assert restored["application"] == "chain"
        assert restored["scheduler"] == "vdce"
        assert set(restored["tasks"]) == {"t0", "t1", "t2"}
        assert restored["makespan_s"] == pytest.approx(result.makespan)
        task = restored["tasks"]["t1"]
        assert task["attempts"] == 1
        assert task["finished_at"] >= task["started_at"]

    def test_to_dict_omits_payload_outputs(self):
        result = self.run()
        assert "outputs" not in result.to_dict()

    def test_comm_to_compute_ratio_nonnegative(self):
        result = self.run()
        assert result.comm_to_compute_ratio() >= 0.0
        assert result.hosts_used()


class TestURLInput:
    def afg_with(self, path):
        afg = ApplicationFlowGraph("urly")
        afg.add_task(
            TaskNode(
                id="t",
                task_type="generic.compute",
                n_in_ports=1,
                n_out_ports=1,
                properties=TaskProperties(
                    inputs=(InputBinding(0, FileSpec(path, 2.0)),)
                ),
            )
        )
        return afg

    def test_url_inputs_counted_separately(self):
        rt = build_runtime()
        afg = self.afg_with("http://data.example.edu/matrix_A.dat")
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        result = rt.sim.run_until_complete(rt.execute_process(afg, table))
        (out,) = result.outputs["t"]
        assert isinstance(out, StagedFile)
        assert out.is_url
        assert rt.io_service.url_staged_count == 1
        assert rt.io_service.staged_count == 1

    def test_plain_file_is_not_url(self):
        rt = build_runtime()
        afg = self.afg_with("/u/users/VDCE/user_k/matrix_A.dat")
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        result = rt.sim.run_until_complete(rt.execute_process(afg, table))
        (out,) = result.outputs["t"]
        assert not out.is_url
        assert rt.io_service.url_staged_count == 0


class TestWebResultEndpoints:
    @pytest.fixture
    def client_and_headers(self):
        flask = pytest.importorskip("flask")
        from repro.editor.webapp import create_webapp

        rt = build_runtime()
        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()
        response = client.post("/login", json={"user": "admin",
                                               "password": "vdce-admin"})
        headers = {"X-VDCE-Token": response.get_json()["token"]}
        return client, headers

    def submit_app(self, client, headers):
        client.post("/applications", json={"name": "app"}, headers=headers)
        src = client.post(
            "/applications/app/tasks",
            json={"task_type": "generic.source"}, headers=headers,
        ).get_json()["task_id"]
        snk = client.post(
            "/applications/app/tasks",
            json={"task_type": "generic.sink"}, headers=headers,
        ).get_json()["task_id"]
        client.post("/applications/app/edges",
                    json={"src": src, "dst": snk}, headers=headers)
        response = client.post("/applications/app/submit", json={"k": 1},
                               headers=headers)
        assert response.status_code == 200

    def test_result_endpoint_returns_full_dict(self, client_and_headers):
        client, headers = client_and_headers
        self.submit_app(client, headers)
        response = client.get("/applications/app/result", headers=headers)
        assert response.status_code == 200
        body = response.get_json()
        assert body["application"] == "app"
        assert len(body["tasks"]) == 2

    def test_gantt_endpoint_returns_text_chart(self, client_and_headers):
        client, headers = client_and_headers
        self.submit_app(client, headers)
        response = client.get("/applications/app/gantt", headers=headers)
        assert response.status_code == 200
        assert response.content_type.startswith("text/plain")
        assert b"makespan" in response.data

    def test_result_before_submit_is_400(self, client_and_headers):
        client, headers = client_and_headers
        client.post("/applications", json={"name": "app"}, headers=headers)
        response = client.get("/applications/app/result", headers=headers)
        assert response.status_code == 400

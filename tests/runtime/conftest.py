"""Shared fixtures for runtime tests."""

import pytest

from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties
from repro.runtime import RuntimeConfig, VDCERuntime
from repro.sim import TopologyBuilder


def build_runtime(
    site_hosts=None,
    config=None,
    wan_latency_s=0.02,
    wan_bandwidth_mbps=2.0,
    seed=0,
    **config_kwargs,
):
    if site_hosts is None:
        site_hosts = {
            "alpha": [("a1", 1.0, 256), ("a2", 2.0, 256)],
            "beta": [("b1", 1.5, 256), ("b2", 3.0, 256)],
        }
    builder = TopologyBuilder(seed=seed).wan_defaults(wan_latency_s, wan_bandwidth_mbps)
    for site, hosts in site_hosts.items():
        builder.site(site, hosts=hosts)
    topo = builder.build()
    cfg = config or RuntimeConfig(**config_kwargs)
    return VDCERuntime(topo, config=cfg)


def chain_afg(n=3, scale=1.0, edge_mb=0.5, name="chain"):
    afg = ApplicationFlowGraph(name)
    afg.add_task(TaskNode(id="t0", task_type="generic.source", n_out_ports=1,
                          properties=TaskProperties(workload_scale=scale)))
    for i in range(1, n):
        afg.add_task(TaskNode(id=f"t{i}", task_type="generic.compute",
                              n_in_ports=1, n_out_ports=1,
                              properties=TaskProperties(workload_scale=scale)))
        afg.connect(f"t{i-1}", f"t{i}", size_mb=edge_mb)
    return afg


@pytest.fixture
def runtime():
    return build_runtime()

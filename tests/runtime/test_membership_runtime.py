"""Runtime elastic membership: join, drain, retire, rejoin, resume.

The full-stack counterpart of ``tests/repository/test_membership.py``:
the :class:`~repro.runtime.membership.MembershipCoordinator` must drive
every layer (topology, repositories, group manager beliefs, monitors,
application controllers) in one step, a graceful drain must lose zero
work, and a checkpointed application must survive resuming on a
federation whose membership changed while it was down (satellite 2).
"""

import json

import pytest

from repro.core.vdce import VDCE
from repro.repository.resources import MembershipError, MembershipState
from repro.runtime.checkpoint import (
    ApplicationCheckpoint,
    CheckpointJournal,
    create_checkpoint_dir,
    expected_output_hashes,
    final_output_hashes,
    journal_path,
    resume_run,
)
from repro.scheduler import SiteScheduler
from repro.sim.host import HostSpec
from repro.trace.events import EventKind
from repro.trace.tracer import Tracer
from repro.workloads import linear_pipeline

from tests.runtime.conftest import build_runtime, chain_afg


def start_run(runtime, afg, k=1):
    table = SiteScheduler(k=k).schedule(afg, runtime.federation_view())
    return runtime.execute_process(afg, table), table


class TestAdmit:
    def test_admitted_host_is_fully_wired(self):
        runtime = build_runtime()
        group = runtime.topology.site("alpha").groups["alpha-g0"]
        runtime.membership.admit_host(
            "alpha", group.name, HostSpec(name="a9", speed=8.0)
        )
        repo = runtime.repositories["alpha"]
        assert repo.resources.membership_state("a9") == MembershipState.ACTIVE
        assert repo.constraints.references_host("a9")
        assert "a9" in runtime.monitors
        assert "a9" in runtime.app_controllers
        assert runtime.topology.host("a9").site_name == "alpha"
        assert [t["transition"] for t in runtime.membership.transitions] \
            == ["join"]

    def test_admitted_host_attracts_work(self):
        runtime = build_runtime()
        group = runtime.topology.site("alpha").groups["alpha-g0"]
        runtime.membership.admit_host(
            "alpha", group.name, HostSpec(name="a9", speed=16.0)
        )
        result = runtime.submit(chain_afg(n=3), SiteScheduler(k=1))
        used = {h for r in result.records.values() for h in r.hosts}
        assert "a9" in used

    def test_admitting_a_departed_name_demands_rejoin(self):
        runtime = build_runtime()
        runtime.membership.retire_host("a2")
        with pytest.raises(MembershipError, match="use rejoin_host"):
            runtime.membership.admit_host(
                "alpha", "alpha-g0", HostSpec(name="a2")
            )


class TestDrain:
    def test_drain_is_invisible_when_nothing_is_resident(self):
        """Draining an idle host evicts nothing and retires cleanly."""
        runtime = build_runtime()
        runtime.membership.drain_host("a2", deadline_s=1.0)
        repo = runtime.repositories["alpha"]
        assert repo.resources.membership_state("a2") \
            == MembershipState.DRAINING
        assert runtime.membership.is_draining("a2")
        runtime.sim.run(until=2.0)
        assert repo.resources.membership_state("a2") \
            == MembershipState.DEPARTED
        depart = runtime.membership.transitions[-1]
        assert depart["transition"] == "depart"
        assert depart["preempted"] == 0

    def test_mid_application_drain_loses_no_work(self):
        """The headline oracle: drain the busiest host mid-run, finish
        with byte-identical outputs to the pure evaluation."""
        runtime = build_runtime()
        afg = chain_afg(n=4, scale=6.0)
        expected = expected_output_hashes(afg, runtime.registry)
        proc, _table = start_run(runtime, afg)
        runtime.sim.run(until=2.0)
        # the fastest host (b2, a non-leader) is mid-task; evict it
        # almost at once
        assert runtime.topology.host("b2").n_running > 0
        runtime.membership.drain_host("b2", deadline_s=0.25)
        result = runtime.sim.run_until_complete(proc)

        assert final_output_hashes(result) == expected
        assert all(r.measured_time > 0 for r in result.records.values())
        reasons = [
            reason
            for r in result.records.values()
            for reason in r.reschedule_reasons
        ]
        assert any("membership change" in reason or "decommissioned" in reason
                   for reason in reasons)
        # nothing placed on b2 after the drain became visible
        for record in result.records.values():
            if "b2" in record.hosts:
                started = record.finished_at - record.measured_time
                assert started < 2.0
        assert runtime.repositories["beta"].resources \
            .membership_state("b2") == MembershipState.DEPARTED

    def test_generous_deadline_preempts_nothing(self):
        """Residents that finish inside the grace window are not evicted.

        Downstream tasks still reroute off the DRAINING host (I14 —
        placements stop the instant the transition is visible), but the
        attempt that was resident when the drain began runs to
        completion, and the deferred retire finds nothing to preempt.
        """
        runtime = build_runtime()
        afg = chain_afg(n=3, scale=1.0)
        expected = expected_output_hashes(afg, runtime.registry)
        proc, _table = start_run(runtime, afg)
        runtime.sim.run(until=0.5)
        runtime.membership.drain_host("b2", deadline_s=60.0)
        result = runtime.sim.run_until_complete(proc)
        assert final_output_hashes(result) == expected
        assert all(r.measured_time > 0 for r in result.records.values())
        # the application outran the grace window; the deferred retire
        # then finds nothing resident to preempt
        runtime.sim.run(until=65.0)
        depart = runtime.membership.transitions[-1]
        assert depart["transition"] == "depart"
        assert depart["preempted"] == 0

    def test_drain_rejects_nonpositive_deadline(self):
        runtime = build_runtime()
        with pytest.raises(ValueError, match="deadline must be positive"):
            runtime.membership.drain_host("a2", deadline_s=0.0)


class TestRetireAndRejoin:
    def test_retire_unwires_every_layer(self):
        runtime = build_runtime()
        runtime.membership.retire_host("a2")
        repo = runtime.repositories["alpha"]
        assert not repo.resources.has_host("a2")
        assert repo.resources.departed_hosts() == {"a2": 0}
        assert not repo.constraints.references_host("a2")
        assert "a2" not in runtime.monitors
        assert "a2" not in runtime.app_controllers
        with pytest.raises(Exception):
            runtime.topology.host("a2")

    def test_rejoin_bumps_epoch_and_keeps_calibration(self):
        runtime = build_runtime()
        repo = runtime.repositories["alpha"]
        # calibrate: run an application so the task-perf DB learns
        runtime.submit(chain_afg(n=3), SiteScheduler(k=1))
        perf_rows = len(repo.task_perf)

        runtime.membership.retire_host("a2")
        runtime.membership.rejoin_host("a2", spec=HostSpec(name="a2", speed=4.0))

        record = repo.resources.get("a2")
        assert record.state == MembershipState.ACTIVE
        assert record.epoch == 1
        assert record.spec.speed == 4.0  # hardware changed under the name
        # stale-record reconciliation: calibration kept, dynamic state fresh
        assert len(repo.task_perf) == perf_rows
        assert record.load == 0.0
        assert "a2" in runtime.monitors
        # the rejoined host is schedulable and completes work again
        result = runtime.submit(chain_afg(n=3, name="again"),
                                SiteScheduler(k=1))
        used = {h for r in result.records.values() for h in r.hosts}
        assert "a2" in used

    def test_rejoin_of_never_departed_host_is_typed(self):
        runtime = build_runtime()
        with pytest.raises(MembershipError, match="never departed"):
            runtime.membership.rejoin_host("a2")

    def test_transitions_are_traced(self):
        tracer = Tracer()
        runtime = build_runtime(config=None)
        runtime.tracer = tracer  # not wired post-hoc into components...
        # ...so drive the coordinator's own tracer directly
        runtime.membership.tracer = tracer
        runtime.membership.drain_host("a2", deadline_s=0.5)
        runtime.sim.run(until=1.0)
        runtime.membership.rejoin_host("a2")
        kinds = [e.kind for e in tracer.events()]
        assert EventKind.HOST_DRAIN in kinds
        assert EventKind.HOST_DEPART in kinds
        assert EventKind.HOST_REJOIN in kinds


class TestResumeAcrossMembershipChange:
    """Satellite 2: the journal outlives the federation that wrote it."""

    def _crash_and_depart(self, tmp_path, seed=11):
        env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=seed)
        afg = linear_pipeline(n_stages=5, cost=4.0, edge_mb=1.0)
        expected = expected_output_hashes(afg, env.runtime.registry)
        directory = str(tmp_path)
        journal = create_checkpoint_dir(env, directory)
        table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
        env.runtime.execute_process(afg, table, journal=journal)
        env.sim.run(until=2.0)  # crash mid-run: a frontier remains

        checkpoint = ApplicationCheckpoint.load(journal_path(directory))
        incomplete = checkpoint.incomplete()
        assert incomplete
        # a host the frontier is bound to departs while the app is down
        task = sorted(incomplete)[0]
        assignment = checkpoint.table.assignments[task]
        victim = assignment.hosts[0]
        env.runtime.repositories[assignment.site].deregister_host(victim)
        env.save_repositories(directory + "/repos")
        return directory, expected, victim, task

    def test_frontier_on_departed_host_is_rescheduled(self, tmp_path):
        directory, expected, victim, task = self._crash_and_depart(tmp_path)
        tracer = Tracer()
        env2, result = resume_run(directory, tracer=tracer)

        assert final_output_hashes(result) == expected
        assert victim not in result.records[task].hosts
        assert any("membership change" in reason
                   for reason in result.records[task].reschedule_reasons)
        warnings = [e for e in tracer.events()
                    if e.kind == EventKind.RESUME_MEMBERSHIP_WARNING]
        assert warnings
        assert any(victim in entry for entry in warnings[0].data["stale"])

    def test_warning_is_a_typed_journal_record(self, tmp_path):
        directory, _expected, victim, task = self._crash_and_depart(tmp_path)
        resume_run(directory)
        with open(journal_path(directory), encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        warnings = [r for r in records if r["kind"] == "membership_warning"]
        assert warnings
        assert warnings[0]["task"] == task
        assert victim in warnings[0]["hosts"]
        assert any(victim in entry for entry in warnings[0]["stale"])
        # old readers skip the unknown kind: the checkpoint still loads
        checkpoint = ApplicationCheckpoint.load(journal_path(directory))
        assert checkpoint.afg.name

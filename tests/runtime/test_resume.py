"""Tests: crash + resume reproduces the uninterrupted run's outputs.

The resume-equivalence oracle: tasklib implementations are
deterministic pure functions of ``(inputs, scale)``, so
``expected_output_hashes`` (pure evaluation, no runtime) is the ground
truth any run must reproduce — uninterrupted, crashed-and-resumed,
failed-over or restarted on another site.
"""

import pytest

from repro import VDCE
from repro.runtime.checkpoint import (
    ApplicationCheckpoint,
    CheckpointJournal,
    create_checkpoint_dir,
    expected_output_hashes,
    final_output_hashes,
    journal_path,
    resume_run,
)
from repro.runtime.execution import ExecutionCoordinator
from repro.net.rpc import ManagerUnavailable
from repro.scheduler import SiteScheduler
from repro.sim import FailureInjector, SimulationError
from repro.workloads import linear_pipeline

CRASH_POINTS_S = (2.0, 5.0, 9.0)


def start_checkpointed_run(tmp_path, seed, n_stages=5):
    env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=seed)
    afg = linear_pipeline(n_stages=n_stages, cost=4.0, edge_mb=1.0)
    expected = expected_output_hashes(afg, env.runtime.registry)
    journal = create_checkpoint_dir(env, str(tmp_path))
    table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
    proc = env.runtime.execute_process(afg, table, journal=journal)
    return env, afg, proc, expected


class TestResumeEquivalence:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_crash_resume_matches_pure_evaluation(self, seed, tmp_path):
        """3 crash points x this seed: byte-identical terminal hashes."""
        completed_counts = []
        for crash_at in CRASH_POINTS_S:
            directory = tmp_path / f"crash-at-{crash_at}"
            env, afg, _proc, expected = start_checkpointed_run(
                directory, seed
            )
            env.sim.run(until=crash_at)  # the "crash": the process dies here
            env.save_repositories(str(directory / "repos"))

            checkpoint = ApplicationCheckpoint.load(
                journal_path(str(directory))
            )
            completed_counts.append(len(checkpoint.completed))
            assert set(checkpoint.incomplete()) | set(checkpoint.completed) \
                == set(afg.topological_order())

            env2, result = resume_run(str(directory))
            assert final_output_hashes(result) == expected
            assert env2.runtime.stats.resumes == 1
            # restored tasks were not re-executed
            restored = set(checkpoint.completed)
            for task_id in restored:
                assert result.records[task_id].finished_at \
                    == checkpoint.completed[task_id]["finished_at"]
        # the crash points genuinely differ: early ones leave a frontier,
        # late ones have completed work to restore
        assert max(completed_counts) > 0
        assert min(completed_counts) < 5

    def test_uninterrupted_run_matches_the_same_oracle(self, tmp_path):
        env, _afg, proc, expected = start_checkpointed_run(tmp_path, seed=11)
        result = env.sim.run_until_complete(proc)
        assert final_output_hashes(result) == expected

    def test_double_crash_resumes_from_even_later(self, tmp_path):
        """The journal keeps growing across resumes."""
        env, _afg, _proc, expected = start_checkpointed_run(tmp_path, seed=12)
        env.sim.run(until=5.0)
        env.save_repositories(str(tmp_path / "repos"))
        first = len(ApplicationCheckpoint.load(
            journal_path(str(tmp_path))).completed)

        # first resume also dies mid-run (journal appends are durable
        # even though the resuming process never returned)
        with pytest.raises(SimulationError):
            resume_run(str(tmp_path), limit=6.0)
        checkpoint = ApplicationCheckpoint.load(journal_path(str(tmp_path)))
        assert checkpoint.resumes == 1
        assert len(checkpoint.completed) >= first

        _env3, result3 = resume_run(str(tmp_path))
        assert final_output_hashes(result3) == expected

    def test_resume_of_a_completed_run_restores_everything(self, tmp_path):
        env, _afg, proc, expected = start_checkpointed_run(tmp_path, seed=13)
        env.sim.run_until_complete(proc)
        env.save_repositories(str(tmp_path / "repos"))
        _env2, result = resume_run(str(tmp_path))
        assert final_output_hashes(result) == expected
        assert all(r.attempts >= 1 for r in result.records.values())


class TestResumeAfterManagerCrash:
    def test_group_manager_crash_then_process_crash_then_resume(self, tmp_path):
        """GM crashes mid-app, deputy takes over, then the run is killed;
        resume still reproduces the oracle hashes."""
        env, _afg, _proc, expected = start_checkpointed_run(tmp_path, seed=11)
        env.start_monitoring()
        injector = FailureInjector(env.sim)
        victim = sorted(env.runtime.group_managers)[0]
        injector.schedule_group_manager_crash(
            env.runtime.group_managers[victim], time=1.5
        )
        env.sim.run(until=6.0)  # past the failover, then the process dies
        assert env.runtime.stats.failovers >= 1
        env.save_repositories(str(tmp_path / "repos"))
        _env2, result = resume_run(str(tmp_path))
        assert final_output_hashes(result) == expected

    def test_site_manager_crash_restarts_on_a_surviving_site(self, tmp_path):
        """The submitting site's VDCE Server dies mid-application: the
        app checkpoint-restarts on a surviving site and the terminal
        hashes still match pure evaluation."""
        env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=12)
        afg = linear_pipeline(n_stages=5, cost=4.0, edge_mb=1.0)
        expected = expected_output_hashes(afg, env.runtime.registry)
        journal = CheckpointJournal(None)  # chaos-style in-memory journal
        table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
        proc = env.runtime.execute_process(
            afg, table, submit_site="site-0", journal=journal
        )
        injector = FailureInjector(env.sim)
        injector.schedule_site_manager_crash(
            env.runtime.site_managers["site-0"], time=4.0
        )
        with pytest.raises(ManagerUnavailable):
            env.sim.run_until_complete(proc)

        checkpoint = ApplicationCheckpoint.from_records(journal.records())
        coordinator = ExecutionCoordinator(
            env.runtime, checkpoint.afg, checkpoint.table,
            submit_site="site-1", journal=journal, checkpoint=checkpoint,
        )
        result = env.sim.run_until_complete(coordinator.start())
        assert final_output_hashes(result) == expected
        assert env.runtime.stats.resumes == 1

    def test_site_manager_crash_with_no_survivor_propagates(self, tmp_path):
        env = VDCE.standard(n_sites=1, hosts_per_site=2, seed=13)
        afg = linear_pipeline(n_stages=3, cost=4.0, edge_mb=1.0)
        journal = CheckpointJournal(None)
        table = SiteScheduler(k=0).schedule(afg, env.runtime.federation_view())
        proc = env.runtime.execute_process(afg, table, journal=journal)
        env.sim.call_after(
            2.0, lambda: env.runtime.site_managers["site-0"].crash()
        )
        with pytest.raises(ManagerUnavailable, match="site manager"):
            env.sim.run_until_complete(proc)


class TestResumeChecksApplication:
    def test_checkpoint_for_a_different_application_is_rejected(self, tmp_path):
        env, _afg, _proc, _expected = start_checkpointed_run(
            tmp_path, seed=11
        )
        env.sim.run(until=3.0)
        checkpoint = ApplicationCheckpoint.load(journal_path(str(tmp_path)))
        other = linear_pipeline(n_stages=2, cost=1.0)
        other.name = "some-other-app"
        table = SiteScheduler(k=0).schedule(
            other, env.runtime.federation_view()
        )
        with pytest.raises(ValueError, match="checkpoint is for"):
            ExecutionCoordinator(
                env.runtime, other, table, checkpoint=checkpoint
            )

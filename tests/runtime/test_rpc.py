"""Control-plane RPC: timeouts, retries, backoff, fail-fast, notify."""

import pytest

from repro.net.rpc import ControlPlane, RetryPolicy, RpcTimeout
from repro.runtime.stats import RuntimeStats
from repro.sim import TopologyBuilder


def _topo(seed=0):
    builder = TopologyBuilder(seed=seed).wan_defaults(0.02, 2.0)
    builder.site("alpha", hosts=[("a1", 1.0, 256)])
    builder.site("beta", hosts=[("b1", 1.0, 256)])
    return builder.build()


def _drive(sim, gen):
    """Run an RPC generator to completion, returning (value, error)."""
    box = {}

    def proc():
        try:
            box["value"] = yield from gen
        except RpcTimeout as exc:
            box["error"] = exc

    p = sim.process(proc())
    sim.run_until_complete(p, limit=1e6)
    return box.get("value"), box.get("error")


def test_clean_request_returns_handler_value_and_draws_no_rng():
    topo = _topo()
    control = ControlPlane(topo.sim, topo.network, stats=RuntimeStats())
    value, error = _drive(
        topo.sim,
        control.request("a1", "b1", lambda: 42, payload_mb=0.01, reply_mb=0.01),
    )
    assert error is None and value == 42
    # fault-free runs must not consume randomness (determinism of the
    # fault-free timing across configs that add fault streams): the
    # per-peer stream exists but has the state of a never-used stream
    import numpy as np

    fresh = np.random.default_rng(np.random.SeedSequence(
        entropy=topo.sim.seed, spawn_key=tuple(b"rpc:alpha->beta")
    ))
    assert (topo.sim.rng("rpc:alpha->beta").bit_generator.state
            == fresh.bit_generator.state)


def test_request_to_downed_link_raises_typed_timeout_fast():
    topo = _topo()
    stats = RuntimeStats()
    control = ControlPlane(topo.sim, topo.network, stats=stats)
    topo.network.wan_link("alpha", "beta").fail()
    value, error = _drive(
        topo.sim, control.request("a1", "b1", lambda: 1, label="x")
    )
    assert isinstance(error, RpcTimeout)
    assert error.attempts == 4
    assert stats.rpc_timeouts == 1
    assert stats.rpc_retries == 4  # every attempt failed
    # fail-fast: only backoff pauses elapsed, never the full timeouts
    assert topo.sim.now < RetryPolicy().timeout_s


def test_message_loss_burns_timeout_then_retry_succeeds():
    topo = _topo()
    stats = RuntimeStats()
    control = ControlPlane(topo.sim, topo.network, stats=stats)
    # certain loss... then heal the loss after the first attempt began
    topo.network.set_message_loss(0.9, site_a="alpha", site_b="beta")
    link = topo.network.wan_link("alpha", "beta")
    topo.sim.call_at(0.5, lambda: setattr(link, "loss_prob", 0.0))
    value, error = _drive(
        topo.sim,
        control.request("a1", "b1", lambda: "ok",
                        policy=RetryPolicy(timeout_s=1.0, max_attempts=10)),
    )
    assert error is None and value == "ok"
    assert stats.rpc_retries >= 1
    # the lost attempt burned (close to) its full timeout
    assert topo.sim.now > 1.0


def test_handler_generator_is_driven_inside_rpc():
    from repro.sim.kernel import Timeout

    topo = _topo()
    control = ControlPlane(topo.sim, topo.network)

    def handler():
        def work():
            yield Timeout(2.0)
            return "served"

        return work()

    value, error = _drive(
        topo.sim,
        control.request("a1", "b1", handler,
                        policy=RetryPolicy(timeout_s=10.0)),
    )
    assert error is None and value == "served"
    assert topo.sim.now > 2.0


def test_backoff_is_exponential_with_bounded_jitter():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, jitter_frac=0.2)
    assert policy.backoff(1, 0.0) == pytest.approx(0.1)
    assert policy.backoff(2, 0.0) == pytest.approx(0.2)
    assert policy.backoff(3, 0.0) == pytest.approx(0.4)
    assert policy.backoff(1, 1.0) == pytest.approx(0.12)
    with pytest.raises(ValueError):
        policy.backoff(0, 0.5)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_frac=1.5)


def test_notify_lan_clean_is_one_latency():
    topo = _topo()
    control = ControlPlane(topo.sim, topo.network)
    link = topo.network.lan_link("alpha")
    got = {}
    control.notify_lan(link, lambda: got.setdefault("at", topo.sim.now), 0.001)
    topo.sim.run()
    assert got["at"] == pytest.approx(0.001)


def test_notify_lan_retries_through_loss():
    topo = _topo()
    stats = RuntimeStats()
    control = ControlPlane(topo.sim, topo.network, stats=stats)
    link = topo.network.lan_link("alpha")
    link.loss_prob = 0.99  # first draws will almost surely lose
    got = {}
    control.notify_lan(
        link, lambda: got.setdefault("at", topo.sim.now), 0.001,
        label="test-report",
        policy=RetryPolicy(max_attempts=200, backoff_base_s=0.01,
                           backoff_factor=1.0),
    )
    topo.sim.run()
    assert "at" in got  # eventually delivered
    assert stats.rpc_retries >= 1


def test_notify_lan_gives_up_silently_on_down_link():
    topo = _topo()
    stats = RuntimeStats()
    control = ControlPlane(topo.sim, topo.network, stats=stats)
    link = topo.network.lan_link("alpha")
    link.fail()
    got = {}
    control.notify_lan(link, lambda: got.setdefault("at", topo.sim.now), 0.001)
    topo.sim.run()
    assert not got
    assert stats.rpc_timeouts == 1

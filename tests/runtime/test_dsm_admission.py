"""Tests for the DSM extension and the priority admission queue."""

import pytest

from repro.runtime.admission import AdmissionQueue
from repro.runtime.dsm import DSM, DSMError

from tests.runtime.conftest import build_runtime, chain_afg


def make_dsm():
    rt = build_runtime()
    dsm = DSM(rt.sim, rt.topology.network)
    return rt, dsm


def run(sim, gen):
    return sim.run_until_complete(sim.process(gen))


class TestDSM:
    def test_allocate_and_home_read_is_free(self):
        rt, dsm = make_dsm()
        dsm.allocate("x", "a1", initial=41)

        def reader():
            value = yield from dsm.read("x", "a1")
            return (value, rt.sim.now)

        value, t = run(rt.sim, reader())
        assert value == 41
        assert t == 0.0  # home read costs nothing
        assert dsm.stats.read_hits == 1

    def test_remote_read_fetches_then_caches(self):
        rt, dsm = make_dsm()
        dsm.allocate("x", "a1", initial=7)

        def reader():
            v1 = yield from dsm.read("x", "b1")  # miss: cross-site fetch
            t1 = rt.sim.now
            v2 = yield from dsm.read("x", "b1")  # hit: free
            return (v1, v2, t1, rt.sim.now)

        v1, v2, t1, t2 = run(rt.sim, reader())
        assert v1 == v2 == 7
        assert t1 > 0.0
        assert t2 == t1  # second read free
        assert dsm.stats.read_misses == 1
        assert dsm.stats.read_hits == 1

    def test_write_invalidates_cached_copies(self):
        rt, dsm = make_dsm()
        dsm.allocate("x", "a1", initial=1)

        def scenario():
            yield from dsm.read("x", "b1")  # b1 caches version 0
            yield from dsm.write("x", 2, "a2")  # a2 writes via home
            value = yield from dsm.read("x", "b1")  # must re-fetch
            return value

        assert run(rt.sim, scenario()) == 2
        assert dsm.stats.invalidations == 1
        assert dsm.stats.read_misses == 2

    def test_sequential_consistency_no_stale_read_after_write(self):
        rt, dsm = make_dsm()
        dsm.allocate("flag", "a1", initial=0)
        observed = []

        def writer():
            yield from dsm.write("flag", 1, "b1")
            observed.append(("written", rt.sim.now))

        def reader():
            # wait until after the write completes, then read from a third host
            writer_proc = rt.sim.process(writer())
            yield writer_proc
            value = yield from dsm.read("flag", "a2")
            observed.append(("read", value))

        run(rt.sim, reader())
        assert ("read", 1) in observed

    def test_fetch_add_is_atomic_across_hosts(self):
        rt, dsm = make_dsm()
        dsm.allocate("counter", "a1", initial=0)

        def incrementer(host, times):
            for _ in range(times):
                yield from dsm.fetch_add("counter", 1, host)

        procs = [
            rt.sim.process(incrementer(h, 5))
            for h in ("a1", "a2", "b1", "b2")
        ]

        def waiter():
            for p in procs:
                yield p
            value = yield from dsm.read("counter", "a1")
            return value

        assert run(rt.sim, waiter()) == 20

    def test_errors(self):
        rt, dsm = make_dsm()
        dsm.allocate("x", "a1")
        with pytest.raises(DSMError):
            dsm.allocate("x", "a1")
        with pytest.raises(DSMError):
            run(rt.sim, dsm.read("ghost", "a1"))
        with pytest.raises(Exception):
            dsm.allocate("y", "no-such-host")

    def test_hit_rate(self):
        rt, dsm = make_dsm()
        dsm.allocate("x", "a1", initial=0)

        def reads():
            for _ in range(4):
                yield from dsm.read("x", "b1")

        run(rt.sim, reads())
        assert dsm.stats.hit_rate() == pytest.approx(0.75)


class TestAdmissionQueue:
    def test_priority_order_respected(self):
        rt = build_runtime()
        repo = rt.repositories["alpha"]
        repo.users.add_user("low", "x", priority=1)
        repo.users.add_user("high", "x", priority=9)
        queue = AdmissionQueue(rt, max_concurrent=1)
        # all three enqueue before the dispatcher first runs, so pure
        # priority order applies (FIFO within equal priorities)
        s_first = queue.submit(chain_afg(n=2, name="low-a"), "low")
        s_low = queue.submit(chain_afg(n=2, name="low-b"), "low")
        s_high = queue.submit(chain_afg(n=2, name="high-c"), "high")
        done = []

        def waiter():
            for s in (s_first, s_low, s_high):
                result = yield s
                done.append(result.application)

        rt.sim.run_until_complete(rt.sim.process(waiter()))
        assert queue.admitted_order == ["high-c", "low-a", "low-b"]
        assert len(done) == 3

    def test_fifo_within_priority(self):
        rt = build_runtime()
        queue = AdmissionQueue(rt, max_concurrent=1)
        signals = [
            queue.submit(chain_afg(n=1, name=f"app{i}"), "admin")
            for i in range(3)
        ]

        def waiter():
            for s in signals:
                yield s

        rt.sim.run_until_complete(rt.sim.process(waiter()))
        assert queue.admitted_order == ["app0", "app1", "app2"]

    def test_concurrency_limit(self):
        rt = build_runtime()
        queue = AdmissionQueue(rt, max_concurrent=2)
        signals = [
            queue.submit(chain_afg(n=2, scale=5.0, name=f"c{i}"), "admin")
            for i in range(3)
        ]
        max_running = []

        def prober():
            while not all(s.triggered for s in signals):
                max_running.append(queue.running)
                yield rt.sim.timeout(0.5)

        rt.sim.process(prober())

        def waiter():
            for s in signals:
                yield s

        rt.sim.run_until_complete(rt.sim.process(waiter()))
        assert max(max_running) == 2

    def test_failure_propagates_and_frees_slot(self):
        rt = build_runtime()
        queue = AdmissionQueue(rt, max_concurrent=1)
        from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties

        bad = ApplicationFlowGraph("bad")
        bad.add_task(TaskNode(id="t", task_type="generic.source", n_out_ports=1,
                              properties=TaskProperties(
                                  preferred_machine="nowhere")))
        s_bad = queue.submit(bad, "admin")
        s_ok = queue.submit(chain_afg(n=1, name="ok"), "admin")
        outcome = {}

        def waiter():
            try:
                yield s_bad
            except Exception as exc:
                outcome["bad"] = str(exc)
            result = yield s_ok
            outcome["ok"] = result.application

        rt.sim.run_until_complete(rt.sim.process(waiter()))
        assert "no site can run" in outcome["bad"]
        assert outcome["ok"] == "ok"

    def test_queue_wait_recorded_in_stats(self):
        # pins the CLI-facing contract: per-application queue waits land
        # in RuntimeStats.queue_waits and sum into queue_wait_s
        rt = build_runtime()
        queue = AdmissionQueue(rt, max_concurrent=1)
        signals = [
            queue.submit(chain_afg(n=2, scale=2.0, name=f"w{i}"), "admin")
            for i in range(3)
        ]

        def waiter():
            for s in signals:
                yield s

        rt.sim.run_until_complete(rt.sim.process(waiter()))
        waits = rt.stats.queue_waits
        assert set(waits) == {"w0", "w1", "w2"}
        assert waits["w0"] == 0.0  # an idle queue admits immediately
        assert waits["w1"] > 0.0
        assert waits["w2"] > waits["w1"]  # FIFO: later copies wait longer
        assert rt.stats.queue_wait_s == pytest.approx(sum(waits.values()))
        assert rt.stats.as_dict()["queue_wait_s"] == pytest.approx(
            rt.stats.queue_wait_s
        )

    def test_unknown_user_rejected(self):
        rt = build_runtime()
        queue = AdmissionQueue(rt)
        with pytest.raises(KeyError):
            queue.submit(chain_afg(n=1), "ghost")

    def test_validation(self):
        rt = build_runtime()
        with pytest.raises(ValueError):
            AdmissionQueue(rt, max_concurrent=0)

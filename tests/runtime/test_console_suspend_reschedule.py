"""Tests: console suspend interleaved with in-flight rescheduling.

The Application Controller's recovery loop re-checks the console gate
before every attempt, so a host failure during a suspension must not
restart the task until the operator resumes — and then exactly once.
"""

from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties
from repro.scheduler import SiteScheduler

from tests.runtime.conftest import build_runtime


def slow_chain():
    afg = ApplicationFlowGraph("suspendy")
    afg.add_task(TaskNode(id="src", task_type="generic.source",
                          n_out_ports=1,
                          properties=TaskProperties(workload_scale=0.5)))
    afg.add_task(TaskNode(id="work", task_type="generic.compute",
                          n_in_ports=1, n_out_ports=1,
                          properties=TaskProperties(workload_scale=40.0)))
    afg.connect("src", "work", size_mb=1.0)
    return afg


class TestSuspendDuringRecovery:
    def test_host_failure_while_suspended_restarts_exactly_once(self):
        rt = build_runtime(
            site_hosts={"alpha": [("a1", 4.0, 256), ("a2", 1.0, 256)]}
        )
        afg = slow_chain()
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        victim = table.get("work").hosts[0]
        assert victim == "a1"  # the fast host wins the initial selection

        proc = rt.execute_process(afg, table)
        rt.sim.call_at(2.0, lambda: rt.console.suspend(afg.name))
        rt.sim.call_at(3.0, lambda: rt.topology.host(victim).fail())
        rt.sim.call_at(8.0, lambda: rt.console.resume(afg.name))
        result = rt.sim.run_until_complete(proc)

        record = result.records["work"]
        # the failed attempt plus exactly one restart on the replacement
        assert record.attempts == 2
        assert record.hosts == ("a2",)
        assert len(record.reschedule_reasons) == 1
        # the restart waited for the operator: nothing ran while suspended
        assert record.finished_at > 8.0
        assert rt.console.suspend_count == 1
        assert not rt.console.is_suspended(afg.name)

    def test_suspend_before_any_failure_just_delays(self):
        rt = build_runtime(
            site_hosts={"alpha": [("a1", 4.0, 256), ("a2", 1.0, 256)]}
        )
        afg = slow_chain()
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        proc = rt.execute_process(afg, table)
        rt.sim.call_at(0.0, lambda: rt.console.suspend(afg.name))
        rt.sim.call_at(5.0, lambda: rt.console.resume(afg.name))
        result = rt.sim.run_until_complete(proc)
        assert result.records["work"].attempts == 1
        assert result.finished_at > 5.0

"""PredictCache invalidation: a hit is always the model's own float.

The cache's correctness story has two halves: every dynamic input is
either part of the exact key (host name, reported load, available
memory, in-round extra load) or covered by the task-performance DB's
version counter (registration, calibration refinement).  These tests
drive each half — workload churn, slowdown-fault calibration updates,
quarantine/health changes — and require cached and uncached answers to
agree bit-for-bit throughout.
"""

import repro.perf as perf
from repro.afg import TaskNode, TaskProperties
from repro.repository import SiteRepository
from repro.repository.predict_cache import PredictCache
from repro.repository.taskperf import TaskPerfRecord
from repro.scheduler.host_selection import bid_for_task
from repro.scheduler.prediction import PredictionModel
from repro.sim.host import HostSpec

TASK = "math.lu_decompose"


def _repo(n_hosts=3):
    repo = SiteRepository("cache-site")
    for i in range(n_hosts):
        name = f"c{i}"
        repo.resources.register_host(
            HostSpec(name=name, speed=1.0 + i, memory_mb=256))
        repo.constraints.register(TASK, name, f"/bin/{name}")
    repo.task_perf.register(TaskPerfRecord(
        task_type=TASK, computation_size=2.0,
        communication_size_mb=0.1, required_memory_mb=16))
    return repo


def _direct(model, repo, host_name, extra_load=0.0):
    """The uncached answer for one host, straight from the model."""
    return model.predict(TASK, 1.0, 1, repo.resources.get(host_name),
                         repo.task_perf, memory_mb=None,
                         extra_load=extra_load)


def test_hit_is_bit_identical_and_counted():
    repo = _repo()
    model = PredictionModel()
    cache = repo.predict_cache
    record = repo.resources.get("c0")
    first = cache.predict(model, TASK, 1.0, 1, record, None, 0.0)
    second = cache.predict(model, TASK, 1.0, 1, record, None, 0.0)
    assert first == second == _direct(model, repo, "c0")
    assert cache.misses == 1 and cache.hits == 1
    assert len(cache) == 1


def test_load_change_is_a_new_key_never_a_stale_hit():
    repo = _repo()
    model = PredictionModel()
    cache = repo.predict_cache
    before = cache.predict(model, TASK, 1.0, 1,
                           repo.resources.get("c0"), None, 0.0)
    repo.resources.update_workload("c0", load=3.0,
                                   available_memory_mb=128, time=1.0)
    after = cache.predict(model, TASK, 1.0, 1,
                          repo.resources.get("c0"), None, 0.0)
    assert after == _direct(model, repo, "c0")
    assert after != before  # the load genuinely moved the prediction
    # and the old key still answers for the old state, bit-identically
    assert cache.hits == 0 and cache.misses == 2


def test_calibration_refinement_invalidates_the_whole_cache():
    """A slowdown fault shows up as measured >> expected; the resulting
    record_execution bumps the version and must flush every entry."""
    repo = _repo()
    model = PredictionModel()
    cache = repo.predict_cache
    record = repo.resources.get("c0")
    before = cache.predict(model, TASK, 1.0, 1, record, None, 0.0)
    # the host ran 4x slower than predicted (a slowdown fault)
    repo.task_perf.record_execution(TASK, "c0", expected_s=before,
                                    measured_s=4.0 * before)
    after = cache.predict(model, TASK, 1.0, 1, record, None, 0.0)
    assert after == _direct(model, repo, "c0")
    assert after != before
    assert cache.hits == 0  # same key, but the flush forced a recompute


def test_registration_invalidates():
    repo = _repo()
    model = PredictionModel()
    cache = repo.predict_cache
    cache.predict(model, TASK, 1.0, 1, repo.resources.get("c0"), None, 0.0)
    assert len(cache) == 1
    repo.task_perf.register(TaskPerfRecord(
        task_type="signal.spectrum", computation_size=1.0,
        communication_size_mb=0.1, required_memory_mb=8))
    cache.predict(model, TASK, 1.0, 1, repo.resources.get("c1"), None, 0.0)
    assert len(cache) == 1  # the pre-registration entry was flushed


def test_quarantine_and_health_updates_need_no_invalidation():
    """Health penalties multiply *after* prediction, so score updates
    must flow through a warm cache: cached and uncached bids agree
    before, during, and after a quarantine."""
    repo = _repo()
    model = PredictionModel()
    node = TaskNode(id="t0", task_type=TASK, n_in_ports=0, n_out_ports=1,
                    properties=TaskProperties())
    factors = {"c0": 1.0, "c1": 1.0, "c2": 1.0}

    def health_of(name):
        return factors[name]

    def both_bids():
        with perf.use_flags(predict_cache=True):
            cached = bid_for_task(node, repo, model, lambda _h: 0.0,
                                  health_of=health_of)
        with perf.use_flags(predict_cache=False):
            reference = bid_for_task(node, repo, model, lambda _h: 0.0,
                                     health_of=health_of)
        return cached, reference

    cached, reference = both_bids()
    assert cached == reference
    fastest = cached.primary_host
    # penalize then quarantine the winner; the warm cache must follow
    factors[fastest] = 10.0
    cached, reference = both_bids()
    assert cached == reference and cached.primary_host != fastest
    factors[fastest] = None  # quarantined outright
    cached, reference = both_bids()
    assert cached == reference and fastest not in cached.hosts


def test_int_and_float_extra_load_share_one_entry():
    """The commit ledger's fast path hands out raw ints; int and float
    loads hash equal and promote exactly, so both forms must map to the
    same memo entry with the same float."""
    repo = _repo()
    model = PredictionModel()
    cache = repo.predict_cache
    record = repo.resources.get("c0")
    as_int = cache.predict(model, TASK, 1.0, 1, record, None, 2)
    as_float = cache.predict(model, TASK, 1.0, 1, record, None, 2.0)
    assert as_int == as_float == _direct(model, repo, "c0", extra_load=2.0)
    assert cache.misses == 1 and cache.hits == 1


def test_model_variants_never_collide():
    repo = _repo()
    exact = PredictionModel()
    noisy = PredictionModel(noise=0.3, noise_seed=7)
    cache = PredictCache(repo.task_perf)
    record = repo.resources.get("c0")
    a = cache.predict(exact, TASK, 1.0, 1, record, None, 0.0)
    b = cache.predict(noisy, TASK, 1.0, 1, record, None, 0.0)
    assert a != b
    # switching back re-hits the first model's table
    assert cache.predict(exact, TASK, 1.0, 1, record, None, 0.0) == a
    assert cache.hits == 1

"""Tests for the four site-repository databases."""

import pytest

from repro.repository import (
    AccessDomain,
    AuthenticationError,
    ResourcePerformanceDB,
    SiteRepository,
    TaskConstraintsDB,
    TaskPerformanceDB,
    TaskPerfRecord,
    UserAccountsDB,
)
from repro.sim import HostSpec, Simulator
from repro.sim.site import make_uniform_site
from repro.tasklib import default_registry


class TestUserAccounts:
    def test_add_and_authenticate(self):
        db = UserAccountsDB()
        account = db.add_user("haluk", "secret", priority=5,
                              access_domain=AccessDomain.GLOBAL)
        assert account.user_name == "haluk"
        assert account.priority == 5
        got = db.authenticate("haluk", "secret")
        assert got.user_id == account.user_id

    def test_wrong_password_rejected(self):
        db = UserAccountsDB()
        db.add_user("u", "right")
        with pytest.raises(AuthenticationError):
            db.authenticate("u", "wrong")

    def test_unknown_user_rejected_with_same_error(self):
        db = UserAccountsDB()
        with pytest.raises(AuthenticationError):
            db.authenticate("ghost", "x")

    def test_no_plaintext_password_stored(self):
        db = UserAccountsDB()
        account = db.add_user("u", "hunter2")
        assert b"hunter2" not in account.password_hash
        assert "hunter2" not in repr(account)

    def test_duplicate_user_rejected(self):
        db = UserAccountsDB()
        db.add_user("u", "x")
        with pytest.raises(ValueError):
            db.add_user("u", "y")

    def test_user_ids_unique_and_monotonic(self):
        db = UserAccountsDB()
        a = db.add_user("a", "x")
        b = db.add_user("b", "x")
        assert b.user_id == a.user_id + 1

    def test_explicit_user_id(self):
        db = UserAccountsDB()
        assert db.add_user("a", "x", user_id=7).user_id == 7

    def test_validation(self):
        db = UserAccountsDB()
        with pytest.raises(ValueError):
            db.add_user("", "x")
        with pytest.raises(ValueError):
            db.add_user("u", "")
        with pytest.raises(ValueError):
            db.add_user("u", "x", priority=-1)

    def test_remove_and_set_priority(self):
        db = UserAccountsDB()
        db.add_user("u", "x", priority=1)
        updated = db.set_priority("u", 9)
        assert updated.priority == 9
        assert db.authenticate("u", "x").priority == 9
        db.remove("u")
        assert "u" not in db
        with pytest.raises(KeyError):
            db.remove("u")


class TestResourceDB:
    def make_db(self):
        db = ResourcePerformanceDB("syr")
        db.register_host(HostSpec(name="h0", speed=1.0, memory_mb=128), group="g0")
        db.register_host(HostSpec(name="h1", speed=2.0, memory_mb=256), group="g0")
        return db

    def test_register_and_get(self):
        db = self.make_db()
        rec = db.get("h0")
        assert rec.site == "syr"
        assert rec.group == "g0"
        assert rec.up
        assert rec.available_memory_mb == 128
        assert len(db) == 2

    def test_duplicate_registration_rejected(self):
        db = self.make_db()
        with pytest.raises(ValueError):
            db.register_host(HostSpec(name="h0"))

    def test_update_workload(self):
        db = self.make_db()
        rec = db.update_workload("h0", load=1.5, available_memory_mb=64, time=10.0)
        assert rec.load == 1.5
        assert rec.updated_at == 10.0
        assert db.workload_updates == 1
        assert db.staleness("h0", now=25.0) == pytest.approx(15.0)

    def test_mark_down_up(self):
        db = self.make_db()
        db.mark_down("h1", time=5.0)
        assert not db.get("h1").up
        assert [r.name for r in db.up_hosts()] == ["h0"]
        db.mark_up("h1", time=9.0)
        assert db.get("h1").up
        assert db.status_updates == 2

    def test_validation(self):
        db = self.make_db()
        with pytest.raises(ValueError):
            db.update_workload("h0", load=-1.0, available_memory_mb=0, time=0.0)
        with pytest.raises(ValueError):
            db.update_workload("h0", load=0.0, available_memory_mb=-1, time=0.0)
        with pytest.raises(KeyError):
            db.get("ghost")

    def test_links(self):
        from repro.sim import LinkSpec

        db = self.make_db()
        db.set_link("lan", LinkSpec(latency_s=0.001, bandwidth_mbps=10.0))
        assert db.get_link("lan").bandwidth_mbps == 10.0
        assert "lan" in db.links()
        with pytest.raises(KeyError):
            db.get_link("wan")


class TestTaskPerfDB:
    def test_load_from_registry(self):
        db = TaskPerformanceDB("syr")
        n = db.load_from_registry(default_registry())
        assert n == len(default_registry())
        assert db.has("matrix.lu_decomposition")
        rec = db.get("matrix.lu_decomposition")
        assert rec.computation_size == 12.0
        assert rec.parallelizable

    def test_load_is_idempotent(self):
        db = TaskPerformanceDB("syr")
        db.load_from_registry(default_registry())
        assert db.load_from_registry(default_registry()) == 0

    def test_base_cost_scales(self):
        db = TaskPerformanceDB("syr")
        db.load_from_registry(default_registry())
        assert db.base_cost("matrix.lu_decomposition", 2.0) == pytest.approx(24.0)
        with pytest.raises(ValueError):
            db.base_cost("matrix.lu_decomposition", 0.0)

    def test_unknown_task_raises(self):
        db = TaskPerformanceDB("syr")
        with pytest.raises(KeyError):
            db.get("nope")

    def test_calibration_ewma(self):
        db = TaskPerformanceDB("syr")
        db.register(TaskPerfRecord("t", computation_size=10.0,
                                   communication_size_mb=1.0, required_memory_mb=8))
        assert db.host_calibration("t", "h0") == 1.0
        r1 = db.record_execution("t", "h0", expected_s=10.0, measured_s=20.0)
        assert r1 == pytest.approx(2.0)  # first measurement adopted directly
        # a later *accurate* calibrated prediction must leave the
        # calibration untouched (raw ratio = 1.0 x 2.0 = current)
        r2 = db.record_execution("t", "h0", expected_s=20.0, measured_s=20.0)
        assert r2 == pytest.approx(2.0)
        # a calibrated prediction that is still 50% low shifts the EWMA up
        r3 = db.record_execution("t", "h0", expected_s=20.0, measured_s=30.0)
        assert r3 == pytest.approx(0.7 * 2.0 + 0.3 * 3.0)
        assert db.measurements_recorded == 3

    def test_record_execution_validation(self):
        db = TaskPerformanceDB("syr")
        db.register(TaskPerfRecord("t", 1.0, 1.0, 1))
        with pytest.raises(ValueError):
            db.record_execution("t", "h", expected_s=0.0, measured_s=1.0)
        with pytest.raises(KeyError):
            db.record_execution("ghost", "h", expected_s=1.0, measured_s=1.0)

    def test_duplicate_register_rejected(self):
        db = TaskPerformanceDB("syr")
        db.register(TaskPerfRecord("t", 1.0, 1.0, 1))
        with pytest.raises(ValueError):
            db.register(TaskPerfRecord("t", 2.0, 1.0, 1))


class TestConstraintsDB:
    def test_register_and_lookup(self):
        db = TaskConstraintsDB("syr")
        db.register("matrix.lu_decomposition", "h0", "/opt/tasks/lu")
        assert db.executable_path("matrix.lu_decomposition", "h0") == "/opt/tasks/lu"
        assert db.is_runnable("matrix.lu_decomposition", "h0")
        assert not db.is_runnable("matrix.lu_decomposition", "h1")
        assert db.hosts_supporting("matrix.lu_decomposition") == ["h0"]

    def test_relative_path_rejected(self):
        db = TaskConstraintsDB("syr")
        with pytest.raises(ValueError):
            db.register("t", "h", "relative/path")

    def test_duplicate_rejected(self):
        db = TaskConstraintsDB("syr")
        db.register("t", "h", "/a")
        with pytest.raises(ValueError):
            db.register("t", "h", "/b")

    def test_install_everywhere_skips_existing(self):
        db = TaskConstraintsDB("syr")
        db.register("t1", "h0", "/custom/t1")
        added = db.install_everywhere(["t1", "t2"], ["h0", "h1"])
        assert added == 3
        assert db.executable_path("t1", "h0") == "/custom/t1"  # preserved
        assert len(db) == 4

    def test_remove_host(self):
        db = TaskConstraintsDB("syr")
        db.install_everywhere(["t1", "t2"], ["h0", "h1"])
        removed = db.remove_host("h0")
        assert removed == 2
        assert db.hosts_supporting("t1") == ["h1"]

    def test_missing_lookup_raises(self):
        db = TaskConstraintsDB("syr")
        with pytest.raises(KeyError):
            db.executable_path("t", "h")


class TestSiteRepository:
    def test_bootstrap_wires_everything(self):
        sim = Simulator()
        site = make_uniform_site(sim, "syr", n_hosts=4, group_size=2)
        repo = SiteRepository.bootstrap(site, default_registry())
        assert len(repo.resources) == 4
        assert repo.resources.get("syr-h00").group == "syr-g0"
        assert repo.resources.get("syr-h03").group == "syr-g1"
        assert len(repo.task_perf) == len(default_registry())
        assert repo.constraints.is_runnable("matrix.lu_decomposition", "syr-h02")
        admin = repo.users.authenticate("admin", "vdce-admin")
        assert admin.access_domain is AccessDomain.GLOBAL

    def test_runnable_up_hosts_intersection(self):
        sim = Simulator()
        site = make_uniform_site(sim, "syr", n_hosts=3)
        repo = SiteRepository.bootstrap(site, default_registry())
        repo.resources.mark_down("syr-h01", time=1.0)
        repo.resources.begin_draining("syr-h02", time=1.0)
        repo.constraints.remove_host("syr-h02")
        names = [r.name for r in repo.runnable_up_hosts("matrix.lu_decomposition")]
        assert names == ["syr-h00"]

"""Tests: the epoch-stamped membership state machine (issue 10).

The resource-performance DB's roster is elastic: hosts join (JOINING ->
ACTIVE), drain (ACTIVE -> DRAINING), depart (tombstoned with their
epoch) and rejoin (REJOINING at epoch + 1, dynamic state discarded).
These tests pin the legal-transition matrix, the typed errors on every
illegal move, the registration-symmetry guards (satellite 1), and the
persistence round-trip of a partially-deregistered site.
"""

import pytest

from repro.repository.persistence import restore_repository, snapshot_repository
from repro.repository.resources import (
    MembershipError,
    MembershipState,
    RegistrationSyncError,
    ResourcePerformanceDB,
)
from repro.repository.store import SiteRepository
from repro.sim.host import HostSpec
from repro.sim.kernel import Simulator
from repro.sim.site import make_uniform_site
from repro.tasklib.registry import default_registry


def spec(name, speed=1.0, memory_mb=256):
    return HostSpec(name=name, speed=speed, memory_mb=memory_mb)


class TestStateMachine:
    def test_join_then_activate(self):
        db = ResourcePerformanceDB("syr")
        record = db.register_host(spec("h0"), group="g0",
                                  state=MembershipState.JOINING)
        assert record.state == MembershipState.JOINING
        assert record.epoch == 0
        record = db.activate_host("h0", time=1.0)
        assert record.state == MembershipState.ACTIVE
        assert db.membership_state("h0") == MembershipState.ACTIVE

    def test_default_registration_is_active(self):
        db = ResourcePerformanceDB("syr")
        assert db.register_host(spec("h0")).state == MembershipState.ACTIVE

    def test_cannot_register_departed(self):
        db = ResourcePerformanceDB("syr")
        with pytest.raises(MembershipError, match="cannot register"):
            db.register_host(spec("h0"), state=MembershipState.DEPARTED)

    def test_drain_requires_active(self):
        db = ResourcePerformanceDB("syr")
        db.register_host(spec("h0"), state=MembershipState.JOINING)
        with pytest.raises(MembershipError, match="illegal transition"):
            db.begin_draining("h0", time=1.0)
        db.activate_host("h0", time=1.0)
        assert db.begin_draining("h0", time=2.0).state \
            == MembershipState.DRAINING
        # draining twice is illegal too
        with pytest.raises(MembershipError, match="illegal transition"):
            db.begin_draining("h0", time=3.0)

    def test_activate_requires_joining_or_rejoining(self):
        db = ResourcePerformanceDB("syr")
        db.register_host(spec("h0"))
        with pytest.raises(MembershipError, match="illegal transition"):
            db.activate_host("h0", time=1.0)

    def test_unknown_host_is_typed_error(self):
        db = ResourcePerformanceDB("syr")
        with pytest.raises(MembershipError, match="never a member"):
            db.membership_state("ghost")
        with pytest.raises(MembershipError, match="never a member"):
            db.membership_epoch("ghost")


class TestDepartAndRejoin:
    def test_deregister_leaves_tombstone(self):
        db = ResourcePerformanceDB("syr")
        db.register_host(spec("h0"))
        removed = db.deregister_host("h0")
        assert removed.name == "h0"
        assert not db.has_host("h0")
        assert db.membership_state("h0") == MembershipState.DEPARTED
        assert db.membership_epoch("h0") == 0
        assert db.departed_hosts() == {"h0": 0}

    def test_register_after_depart_demands_rejoin(self):
        db = ResourcePerformanceDB("syr")
        db.register_host(spec("h0"))
        db.deregister_host("h0")
        with pytest.raises(MembershipError, match="use rejoin_host"):
            db.register_host(spec("h0"))

    def test_rejoin_bumps_epoch_and_discards_dynamic_state(self):
        db = ResourcePerformanceDB("syr")
        db.register_host(spec("h0"))
        db.update_workload("h0", load=7.0, available_memory_mb=12, time=5.0)
        db.mark_down("h0", time=6.0)
        db.deregister_host("h0")

        record = db.rejoin_host(spec("h0", speed=2.0), group="g0", time=9.0)
        assert record.state == MembershipState.REJOINING
        assert record.epoch == 1
        # stale-record reconciliation: load/up/memory reset, new spec taken
        assert record.load == 0.0
        assert record.up
        assert record.available_memory_mb == 256
        assert record.spec.speed == 2.0
        assert db.departed_hosts() == {}

        # a second churn cycle keeps counting up
        db.activate_host("h0", time=10.0)
        db.deregister_host("h0")
        assert db.rejoin_host(spec("h0"), time=12.0).epoch == 2

    def test_rejoin_without_departure_is_error(self):
        db = ResourcePerformanceDB("syr")
        with pytest.raises(MembershipError, match="never departed"):
            db.rejoin_host(spec("h0"))
        db.register_host(spec("h1"))
        with pytest.raises(MembershipError, match="already registered"):
            db.rejoin_host(spec("h1"))

    def test_restore_departed_rejects_registered_names(self):
        db = ResourcePerformanceDB("syr")
        db.register_host(spec("h0"))
        with pytest.raises(MembershipError, match="cannot tombstone"):
            db.restore_departed("h0", epoch=3)


class TestRegistrationSymmetry:
    """Satellite 1: constraints and resources can't silently diverge."""

    def make_repo(self):
        sim = Simulator()
        site = make_uniform_site(sim, "syr", n_hosts=3)
        return SiteRepository.bootstrap(site, default_registry())

    def test_deregister_with_live_constraints_is_typed(self):
        repo = self.make_repo()
        with pytest.raises(RegistrationSyncError, match="constraints still"):
            repo.resources.deregister_host("syr-h00")
        # the host row is untouched by the failed attempt
        assert repo.resources.has_host("syr-h00")

    def test_remove_constraints_of_active_host_is_typed(self):
        repo = self.make_repo()
        with pytest.raises(RegistrationSyncError):
            repo.constraints.remove_host("syr-h00")

    def test_site_repository_deregisters_both_sides(self):
        repo = self.make_repo()
        repo.deregister_host("syr-h00")
        assert not repo.resources.has_host("syr-h00")
        assert not repo.constraints.references_host("syr-h00")
        assert repo.resources.membership_state("syr-h00") \
            == MembershipState.DEPARTED

    def test_deregister_unknown_host_is_typed(self):
        repo = self.make_repo()
        with pytest.raises(MembershipError, match="not registered"):
            repo.deregister_host("ghost")

    def test_drain_then_retire_is_the_sanctioned_sequence(self):
        repo = self.make_repo()
        repo.resources.begin_draining("syr-h01", time=1.0)
        # constraints may be removed while the row is DRAINING
        repo.constraints.remove_host("syr-h01", deregistering=True)
        repo.resources.deregister_host("syr-h01")
        assert repo.resources.departed_hosts() == {"syr-h01": 0}


class TestMembershipInvalidation:
    def test_every_transition_clears_predict_cache(self):
        sim = Simulator()
        site = make_uniform_site(sim, "syr", n_hosts=3)
        repo = SiteRepository.bootstrap(site, default_registry())
        def prime():
            repo.predict_cache._tables["probe"] = {}

        prime()
        repo.resources.begin_draining("syr-h01", time=1.0)
        assert "probe" not in repo.predict_cache._tables
        prime()
        repo.deregister_host("syr-h01")
        assert "probe" not in repo.predict_cache._tables
        prime()
        repo.resources.rejoin_host(site.host("syr-h01").spec,
                                   group="syr-g0", time=2.0)
        assert "probe" not in repo.predict_cache._tables
        prime()
        repo.resources.activate_host("syr-h01", time=3.0)
        assert "probe" not in repo.predict_cache._tables

    def test_runnable_up_hosts_excludes_non_active(self):
        sim = Simulator()
        site = make_uniform_site(sim, "syr", n_hosts=4)
        repo = SiteRepository.bootstrap(site, default_registry())
        registry = default_registry()
        task = registry.names()[0]
        repo.resources.begin_draining("syr-h01", time=1.0)
        repo.deregister_host("syr-h02")
        repo.resources.rejoin_host(site.host("syr-h02").spec,
                                   group="syr-g0", time=2.0)
        # a rejoined host gets its executables re-installed before it
        # activates — the coordinator's admission sequence
        repo.constraints.install_everywhere(registry.names(), ("syr-h02",))
        names = [r.name for r in repo.runnable_up_hosts(task)]
        assert names == ["syr-h00", "syr-h03"]
        repo.resources.activate_host("syr-h02", time=3.0)
        names = sorted(r.name for r in repo.runnable_up_hosts(task))
        assert names == ["syr-h00", "syr-h02", "syr-h03"]


class TestPartialDeregistrationPersistence:
    """Satellite 1: a mid-churn site snapshot round-trips exactly."""

    def test_snapshot_restores_states_epochs_and_tombstones(self):
        sim = Simulator()
        site = make_uniform_site(sim, "syr", n_hosts=4)
        repo = SiteRepository.bootstrap(site, default_registry())
        # h01 draining; h02 departed (tombstone); h03 rejoined at epoch 1
        repo.resources.begin_draining("syr-h01", time=1.0)
        repo.deregister_host("syr-h02")
        repo.deregister_host("syr-h03")
        repo.resources.rejoin_host(site.host("syr-h03").spec,
                                   group="syr-g1", time=2.0)

        restored = restore_repository(snapshot_repository(repo))

        assert restored.resources.membership_state("syr-h00") \
            == MembershipState.ACTIVE
        assert restored.resources.membership_state("syr-h01") \
            == MembershipState.DRAINING
        assert restored.resources.membership_state("syr-h02") \
            == MembershipState.DEPARTED
        assert restored.resources.membership_epoch("syr-h02") == 0
        assert restored.resources.membership_state("syr-h03") \
            == MembershipState.REJOINING
        assert restored.resources.membership_epoch("syr-h03") == 1
        assert restored.resources.departed_hosts() \
            == repo.resources.departed_hosts()
        # the departed host's constraints stayed gone
        assert not restored.constraints.references_host("syr-h02")
        # and the restored DB still enforces the rejoin protocol
        with pytest.raises(MembershipError, match="use rejoin_host"):
            restored.resources.register_host(spec("syr-h02"))

    def test_snapshot_is_stable_across_a_round_trip(self):
        sim = Simulator()
        site = make_uniform_site(sim, "syr", n_hosts=3)
        repo = SiteRepository.bootstrap(site, default_registry())
        repo.deregister_host("syr-h02")
        first = snapshot_repository(repo)
        second = snapshot_repository(restore_repository(first))
        assert first == second

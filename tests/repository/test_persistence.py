"""Tests: repository snapshot/restore round trips."""

import json

import pytest

from repro.repository import (
    AccessDomain,
    SiteRepository,
    load_repository,
    restore_repository,
    save_repository,
    snapshot_repository,
)
from repro.sim import Simulator
from repro.sim.site import make_uniform_site
from repro.tasklib import default_registry


def populated_repo():
    sim = Simulator()
    site = make_uniform_site(sim, "syr", n_hosts=3, group_size=2)
    repo = SiteRepository.bootstrap(site, default_registry())
    repo.users.add_user("haluk", "topsecret", priority=7,
                        access_domain=AccessDomain.CAMPUS)
    repo.resources.update_workload("syr-h01", load=2.5,
                                   available_memory_mb=128, time=42.0)
    repo.resources.mark_down("syr-h02", time=50.0)
    repo.task_perf.record_execution("generic.compute", "syr-h00",
                                    expected_s=1.0, measured_s=1.8)
    return repo


class TestSnapshotRestore:
    def test_roundtrip_is_exact(self):
        repo = populated_repo()
        restored = restore_repository(snapshot_repository(repo))
        assert snapshot_repository(restored) == snapshot_repository(repo)

    def test_snapshot_is_json_safe(self):
        data = snapshot_repository(populated_repo())
        json.dumps(data)  # must not raise
        assert data["site_name"] == "syr"

    def test_restored_passwords_still_authenticate(self):
        restored = restore_repository(snapshot_repository(populated_repo()))
        account = restored.users.authenticate("haluk", "topsecret")
        assert account.priority == 7
        assert account.access_domain is AccessDomain.CAMPUS
        from repro.repository import AuthenticationError

        with pytest.raises(AuthenticationError):
            restored.users.authenticate("haluk", "wrong")

    def test_no_plaintext_in_snapshot(self):
        text = json.dumps(snapshot_repository(populated_repo()))
        assert "topsecret" not in text
        assert "vdce-admin" not in text

    def test_dynamic_state_survives(self):
        restored = restore_repository(snapshot_repository(populated_repo()))
        rec = restored.resources.get("syr-h01")
        assert rec.load == 2.5
        assert rec.updated_at == 42.0
        assert not restored.resources.get("syr-h02").up
        assert restored.task_perf.host_calibration(
            "generic.compute", "syr-h00"
        ) == pytest.approx(1.8)

    def test_new_users_get_fresh_ids_after_restore(self):
        repo = populated_repo()
        restored = restore_repository(snapshot_repository(repo))
        new = restored.users.add_user("fresh", "x")
        existing_ids = {a.user_id
                        for a in restored.users._accounts.values()
                        if a.user_name != "fresh"}
        assert new.user_id not in existing_ids

    def test_file_roundtrip(self, tmp_path):
        repo = populated_repo()
        path = str(tmp_path / "syr.json")
        save_repository(repo, path)
        loaded = load_repository(path)
        assert snapshot_repository(loaded) == snapshot_repository(repo)

    def test_bad_format_rejected(self):
        data = snapshot_repository(populated_repo())
        data["format"] = 99
        with pytest.raises(ValueError, match="format"):
            restore_repository(data)

    def test_restored_repo_schedules_identically(self):
        """A scheduler fed a restored repository makes the same decisions."""
        from repro.scheduler import FederationView, SiteScheduler
        from repro.workloads import bag_of_tasks

        repo = populated_repo()
        restored = restore_repository(snapshot_repository(repo))
        afg = bag_of_tasks(n=5, cost=2.0, seed=1)

        def schedule_with(r):
            view = FederationView(
                local_site="syr",
                repositories={"syr": r},
                neighbor_order=[],
                site_transfer_time=lambda a, b, mb: 0.001 + mb / 10.0,
            )
            return SiteScheduler(k=0).schedule(afg, view).to_dict()

        assert schedule_with(repo) == schedule_with(restored)

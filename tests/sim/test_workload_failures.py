"""Unit tests for load generators and failure injection."""

import pytest

from repro.sim import (
    ConstantLoad,
    FailureInjector,
    Host,
    HostSpec,
    OrnsteinUhlenbeckLoad,
    RandomWalkLoad,
    Simulator,
    SpikeLoad,
    TraceLoad,
)
from repro.sim.workload import attach_generators


def make_host(sim, name="h0"):
    return Host(sim, HostSpec(name=name))


def test_constant_load_holds_level():
    sim = Simulator()
    host = make_host(sim)
    ConstantLoad(level=0.7, period_s=1.0).start(sim, host)
    sim.run(until=5.0)
    assert host.bg_load == pytest.approx(0.7)


def test_trace_load_replays_and_holds_last():
    sim = Simulator()
    host = make_host(sim)
    TraceLoad([0.0, 1.0, 2.0], period_s=1.0).start(sim, host)
    observed = []
    for t in (0.5, 1.5, 2.5, 9.5):
        sim.call_at(t, lambda: observed.append(host.bg_load))
    sim.run(until=10.0)
    assert observed == [0.0, 1.0, 2.0, 2.0]


def test_trace_load_validation():
    with pytest.raises(ValueError):
        TraceLoad([])
    with pytest.raises(ValueError):
        TraceLoad([0.5, -1.0])


def test_random_walk_stays_in_bounds():
    sim = Simulator(seed=42)
    host = make_host(sim)
    RandomWalkLoad(lo=0.0, hi=1.0, step=0.5, period_s=0.5).start(sim, host)
    samples = []
    for i in range(100):
        sim.call_at(i * 0.5 + 0.25, lambda: samples.append(host.bg_load))
    sim.run(until=50.0)
    assert samples
    assert all(0.0 <= s <= 1.0 for s in samples)


def test_random_walk_is_seed_deterministic():
    def sample(seed):
        sim = Simulator(seed=seed)
        host = make_host(sim)
        RandomWalkLoad(period_s=1.0).start(sim, host)
        out = []
        for i in range(10):
            sim.call_at(i + 0.5, lambda: out.append(host.bg_load))
        sim.run(until=10.0)
        return out

    assert sample(1) == sample(1)
    assert sample(1) != sample(2)


def test_ou_load_reverts_toward_mean():
    sim = Simulator(seed=3)
    host = make_host(sim)
    OrnsteinUhlenbeckLoad(mean=1.0, theta=0.5, sigma=0.01, period_s=1.0).start(sim, host)
    sim.run(until=200.0)
    assert host.bg_load == pytest.approx(1.0, abs=0.2)


def test_ou_load_never_negative():
    sim = Simulator(seed=5)
    host = make_host(sim)
    OrnsteinUhlenbeckLoad(mean=0.05, theta=0.2, sigma=0.5, period_s=0.5).start(sim, host)
    samples = []
    for i in range(200):
        sim.call_at(i * 0.5 + 0.1, lambda: samples.append(host.bg_load))
    sim.run(until=100.0)
    assert min(samples) >= 0.0


def test_spike_load_produces_spikes_of_right_height_and_width():
    sim = Simulator(seed=11)
    host = make_host(sim)
    gen = SpikeLoad(base=0.0, spike_level=4.0, spike_prob=0.2,
                    spike_duration_periods=3, period_s=1.0)
    gen.start(sim, host)
    timeline = []
    for i in range(300):
        sim.call_at(i + 0.5, lambda: timeline.append(host.bg_load))
    sim.run(until=300.0)
    assert set(timeline) <= {0.0, 4.0}
    assert 4.0 in timeline  # with prob 0.2/period over 300 periods, certain
    # spikes last >= spike_duration consecutive periods
    runs = []
    run = 0
    for v in timeline:
        if v == 4.0:
            run += 1
        elif run:
            runs.append(run)
            run = 0
    if run:
        runs.append(run)
    assert runs and min(runs) >= 3


def test_generator_param_validation():
    with pytest.raises(ValueError):
        ConstantLoad(level=-1.0)
    with pytest.raises(ValueError):
        RandomWalkLoad(lo=2.0, hi=1.0)
    with pytest.raises(ValueError):
        OrnsteinUhlenbeckLoad(theta=0.0)
    with pytest.raises(ValueError):
        SpikeLoad(spike_prob=2.0)
    with pytest.raises(ValueError):
        ConstantLoad(period_s=0.0)


def test_attach_generators_one_per_host():
    sim = Simulator()
    hosts = [make_host(sim, name=f"h{i}") for i in range(4)]
    procs = attach_generators(sim, hosts, lambda: ConstantLoad(level=0.3))
    sim.run(until=1.0)
    assert len(procs) == 4
    assert all(h.bg_load == pytest.approx(0.3) for h in hosts)


def test_scripted_failure_and_recovery():
    sim = Simulator()
    host = make_host(sim)
    injector = FailureInjector(sim)
    injector.schedule_outage(host, start=5.0, duration=3.0)
    states = {}
    sim.call_at(4.0, lambda: states.setdefault("before", host.is_up()))
    sim.call_at(6.0, lambda: states.setdefault("during", host.is_up()))
    sim.call_at(9.0, lambda: states.setdefault("after", host.is_up()))
    sim.run()
    assert states == {"before": True, "during": False, "after": True}
    assert injector.downtime_intervals("h0") == [(5.0, 8.0)]


def test_failure_injector_validation():
    sim = Simulator()
    host = make_host(sim)
    injector = FailureInjector(sim)
    with pytest.raises(ValueError):
        injector.schedule(host, 1.0, kind="explode")
    with pytest.raises(ValueError):
        injector.schedule_outage(host, 1.0, duration=0.0)
    with pytest.raises(ValueError):
        injector.start_random(host, mtbf_s=0.0, mttr_s=1.0)


def test_random_failures_alternate_down_up():
    sim = Simulator(seed=9)
    host = make_host(sim)
    injector = FailureInjector(sim)
    injector.start_random(host, mtbf_s=10.0, mttr_s=2.0)
    sim.run(until=200.0)
    kinds = [e.kind for e in injector.log]
    assert kinds, "expected at least one failure in 20 MTBFs"
    assert kinds[0] == "down"
    for a, b in zip(kinds, kinds[1:]):
        assert a != b  # strict alternation


def test_downtime_intervals_open_ended():
    sim = Simulator()
    host = make_host(sim)
    injector = FailureInjector(sim)
    injector.schedule(host, 4.0, "down")
    sim.run()
    assert injector.downtime_intervals("h0") == [(4.0, None)]

"""The overload-storm campaign: I10/I11 invariants and determinism.

The storm preset floods a small federation with bursty submissions
through a bounded, rate-limited admission queue while a partition has
the WAN breakers tripping.  These tests pin the two new invariants —
I10 (queue stays within its bound and every storm app reaches a
terminal state) and I11 (no message crosses an open circuit) — and
byte-determinism of the whole campaign.
"""

from repro.sim.chaos import run_campaign, storm_config

SEEDS = (0, 1, 2)
TERMINAL = {"completed", "failed", "rejected", "expired"}


def test_storm_holds_invariants_across_seeds():
    for seed in SEEDS:
        report = run_campaign(storm_config(seed=seed))
        assert report.ok, (seed, report.violations)
        config = storm_config(seed=seed)
        storm = {
            name: outcome
            for name, outcome in report.outcomes.items()
            if name.startswith("storm")
        }
        assert len(storm) == config.storm_apps
        assert {o["status"] for o in storm.values()} <= TERMINAL, seed
        assert report.peak_queued <= config.storm_max_queued, seed


def test_storm_actually_sheds_and_trips_breakers():
    # seed 0 is the CI-pinned storm: it must exercise every defense
    # layer, not just survive
    report = run_campaign(storm_config(seed=0))
    statuses = [o["status"] for n, o in report.outcomes.items()
                if n.startswith("storm")]
    assert "completed" in statuses
    assert "rejected" in statuses
    assert "expired" in statuses
    assert report.sheds > 0
    reasons = {e["reason"] for e in report.shed_log}
    assert "rate" in reasons or "queue_full" in reasons
    assert report.breaker_transitions > 0


def test_storm_is_byte_deterministic():
    first = run_campaign(storm_config(seed=0))
    second = run_campaign(storm_config(seed=0))
    assert first.trace_hash == second.trace_hash
    assert first.metrics_hash == second.metrics_hash
    assert first.campaign_hash() == second.campaign_hash()


def test_storm_report_serialises_overload_fields():
    payload = run_campaign(storm_config(seed=0)).to_dict()
    assert payload["ok"] is True
    for key in ("sheds", "shed_log", "peak_queued", "brownout_shifts",
                "breaker_transitions", "breaker_fast_fails"):
        assert key in payload, key
    assert payload["sheds"] == len(payload["shed_log"])

"""The chaos-campaign harness: invariants, determinism, typed failures."""

import pytest

from repro.sim.chaos import ChaosConfig, run_campaign, smoke_config


def test_smoke_campaign_passes_all_invariants():
    report = run_campaign(smoke_config(seed=0))
    assert report.ok, report.violations
    assert len(report.outcomes) == 3
    assert all(
        outcome["status"] in ("completed", "failed")
        for outcome in report.outcomes.values()
    )
    assert report.injection_events > 0
    assert report.detections > 0


def test_same_seed_is_byte_deterministic():
    first = run_campaign(smoke_config(seed=0))
    second = run_campaign(smoke_config(seed=0))
    assert first.trace_hash == second.trace_hash
    assert first.metrics_hash == second.metrics_hash
    assert first.campaign_hash() == second.campaign_hash()


def test_different_seeds_diverge():
    assert (run_campaign(smoke_config(seed=0)).campaign_hash()
            != run_campaign(smoke_config(seed=1)).campaign_hash())


def test_faults_produce_typed_failures_not_crashes():
    """A harsher campaign: applications may fail, but only with typed
    errors — and the invariant audit still passes."""
    config = ChaosConfig(
        seed=5,
        n_sites=3,
        hosts_per_site=3,
        n_apps=3,
        duration_s=240.0,
        app_spacing_s=35.0,
        n_flaky_hosts=3,
        host_mtbf_s=60.0,
        host_mttr_s=30.0,
        n_flaky_links=2,
        link_mtbf_s=80.0,
        link_mttr_s=25.0,
        partition_at_s=40.0,
        partition_duration_s=30.0,
        message_loss_prob=0.1,
        echo_loss_prob=0.05,
    )
    report = run_campaign(config)
    assert report.ok, report.violations
    statuses = {o["status"] for o in report.outcomes.values()}
    assert statuses <= {"completed", "failed"}
    for outcome in report.outcomes.values():
        if outcome["status"] == "failed":
            assert outcome["error"] in (
                "ExecutionError", "SchedulingError", "RpcTimeout", "HostDownError",
            )


def test_injection_log_is_serialised_in_report():
    report = run_campaign(smoke_config(seed=0))
    payload = report.to_dict()
    assert payload["ok"] is True
    assert payload["injection_log"]
    assert {"time", "target", "kind"} <= set(payload["injection_log"][0])
    # partition markers are part of the ground truth
    assert any(e["kind"] == "partition" for e in payload["injection_log"])


def test_config_validation():
    with pytest.raises(ValueError):
        ChaosConfig(n_apps=0)
    with pytest.raises(ValueError):
        ChaosConfig(message_loss_prob=1.0)
    with pytest.raises(ValueError):
        ChaosConfig(duration_s=0.0)
    with pytest.raises(ValueError):
        ChaosConfig(n_flaky_hosts=-1)

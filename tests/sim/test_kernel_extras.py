"""Tests: kernel stop_when and explicit host-selection ordering."""

import pytest

from repro.sim import Simulator, Timeout


class TestStopWhen:
    def test_stop_when_halts_mid_queue(self):
        sim = Simulator()
        fired = []
        for t in range(1, 6):
            sim.call_at(float(t), lambda t=t: fired.append(t))
        sim.run(stop_when=lambda: len(fired) >= 3)
        assert fired == [1, 2, 3]
        # remaining events still pending; a further run delivers them
        sim.run()
        assert fired == [1, 2, 3, 4, 5]

    def test_run_until_complete_survives_infinite_background(self):
        sim = Simulator()

        def forever():
            while True:
                yield Timeout(1.0)

        def quick():
            yield Timeout(5.0)
            return "done"

        sim.process(forever())
        assert sim.run_until_complete(sim.process(quick())) == "done"
        assert sim.now == pytest.approx(5.0)

    def test_stop_when_with_until(self):
        sim = Simulator()
        fired = []
        for t in range(1, 10):
            sim.call_at(float(t), lambda t=t: fired.append(t))
        sim.run(until=4.5, stop_when=lambda: False)
        assert fired == [1, 2, 3, 4]
        assert sim.now == pytest.approx(4.5)


class TestSelectHostsOrdering:
    def test_explicit_order_changes_commitment_sequence(self):
        from repro.scheduler.host_selection import select_hosts
        from repro.workloads import bag_of_tasks
        from tests.scheduler.conftest import build_federation

        # gap small enough that a second co-resident task makes the
        # slow host preferable (4x would make doubling-up optimal)
        _, repos, _ = build_federation(
            site_hosts={"alpha": [("fast", 1.5, 256), ("slow", 1.0, 256)]}
        )
        afg = bag_of_tasks(n=2, cost=2.0, heterogeneity=0.5, seed=1)
        ids = sorted(t.id for t in afg)
        # default (level) order considers the costlier task first;
        # the explicit ascending-id order starts with the cheaper one
        default_bids = select_hosts(afg, repos["alpha"])
        reversed_bids = select_hosts(afg, repos["alpha"], order=list(ids))
        # whichever task is considered first claims the fast host
        first_default = min(default_bids.values(),
                            key=lambda b: b.predicted_time)
        assert {b.hosts[0] for b in default_bids.values()} == {"fast", "slow"}
        assert {b.hosts[0] for b in reversed_bids.values()} == {"fast", "slow"}
        # ordering flips which task got the fast host (costs differ)
        by_task_default = {t: default_bids[t].hosts[0] for t in ids}
        by_task_reversed = {t: reversed_bids[t].hosts[0] for t in ids}
        assert by_task_default != by_task_reversed

    def test_bad_order_rejected(self):
        from repro.scheduler.host_selection import select_hosts
        from repro.workloads import bag_of_tasks
        from tests.scheduler.conftest import build_federation

        _, repos, _ = build_federation()
        afg = bag_of_tasks(n=3, cost=1.0)
        with pytest.raises(ValueError, match="permutation"):
            select_hosts(afg, repos["alpha"], order=["job000"])

"""Unit tests for the processor-sharing host model."""

import pytest

from repro.sim import Host, HostSpec, HostState, Simulator
from repro.sim.host import HostDownError, Interrupted


def make_host(sim, speed=1.0, memory_mb=256, thrash=0.25, name="h0"):
    return Host(sim, HostSpec(name=name, speed=speed, memory_mb=memory_mb,
                              thrash_factor=thrash))


def test_single_task_on_idle_unit_host_takes_work_seconds():
    sim = Simulator()
    host = make_host(sim)
    execution = host.execute(work=10.0)
    sim.run()
    assert execution.finished_at == pytest.approx(10.0)
    assert execution.elapsed == pytest.approx(10.0)


def test_speed_divides_execution_time():
    sim = Simulator()
    host = make_host(sim, speed=2.0)
    execution = host.execute(work=10.0)
    sim.run()
    assert execution.finished_at == pytest.approx(5.0)


def test_background_load_slows_execution():
    sim = Simulator()
    host = make_host(sim)
    host.set_bg_load(1.0)  # run queue: 1 background + 1 task = rate 1/2
    execution = host.execute(work=10.0)
    sim.run()
    assert execution.finished_at == pytest.approx(20.0)


def test_two_tasks_share_the_processor():
    sim = Simulator()
    host = make_host(sim)
    e1 = host.execute(work=10.0)
    e2 = host.execute(work=10.0)
    sim.run()
    # both progress at rate 1/2 throughout
    assert e1.finished_at == pytest.approx(20.0)
    assert e2.finished_at == pytest.approx(20.0)


def test_short_task_departure_speeds_up_survivor():
    sim = Simulator()
    host = make_host(sim)
    short = host.execute(work=5.0)
    long = host.execute(work=10.0)
    sim.run()
    # shared until short finishes at t=10 (5 work at rate 1/2),
    # survivor then has 5 work left at rate 1 -> t=15
    assert short.finished_at == pytest.approx(10.0)
    assert long.finished_at == pytest.approx(15.0)


def test_mid_run_load_change_is_integrated():
    sim = Simulator()
    host = make_host(sim)
    execution = host.execute(work=10.0)
    # at t=5 the owner comes back: load 1.0 -> rate halves
    sim.call_at(5.0, lambda: host.set_bg_load(1.0))
    sim.run()
    # 5 work done by t=5, remaining 5 at rate 1/2 -> 10 more seconds
    assert execution.finished_at == pytest.approx(15.0)


def test_zero_work_completes_immediately_but_async():
    sim = Simulator()
    host = make_host(sim)
    execution = host.execute(work=0.0)
    assert not execution.done.triggered  # async delivery
    sim.run()
    assert execution.done.triggered
    assert execution.finished_at == pytest.approx(0.0)


def test_memory_oversubscription_applies_thrash_factor():
    sim = Simulator()
    host = make_host(sim, memory_mb=100, thrash=0.5)
    execution = host.execute(work=10.0, memory_mb=200)
    sim.run()
    assert execution.finished_at == pytest.approx(20.0)


def test_memory_within_budget_no_penalty():
    sim = Simulator()
    host = make_host(sim, memory_mb=100, thrash=0.5)
    execution = host.execute(work=10.0, memory_mb=100)
    sim.run()
    assert execution.finished_at == pytest.approx(10.0)


def test_available_memory_tracks_running_tasks():
    sim = Simulator()
    host = make_host(sim, memory_mb=256)
    assert host.available_memory_mb() == 256
    host.execute(work=100.0, memory_mb=100)
    assert host.available_memory_mb() == 156
    host.execute(work=100.0, memory_mb=300)
    assert host.available_memory_mb() == 0  # clamped at zero


def test_load_average_counts_tasks_and_background():
    sim = Simulator()
    host = make_host(sim)
    host.set_bg_load(0.5)
    host.execute(work=100.0)
    host.execute(work=100.0)
    assert host.load_average() == pytest.approx(2.5)


def test_cancel_fails_the_done_signal():
    sim = Simulator()
    host = make_host(sim)
    execution = host.execute(work=100.0)
    outcome = []

    def waiter():
        try:
            yield execution.done
            outcome.append("completed")
        except Interrupted:
            outcome.append("cancelled")

    sim.process(waiter())
    sim.call_at(5.0, lambda: host.cancel(execution, cause="reschedule"))
    sim.run()
    assert outcome == ["cancelled"]
    assert host.failed_count == 1
    assert host.n_running == 0


def test_cancel_unknown_execution_is_noop():
    sim = Simulator()
    host = make_host(sim)
    e1 = host.execute(work=1.0)
    sim.run()
    host.cancel(e1)  # already finished
    assert host.failed_count == 0


def test_fail_kills_all_running_executions():
    sim = Simulator()
    host = make_host(sim)
    e1 = host.execute(work=100.0)
    e2 = host.execute(work=100.0)
    caught = []

    def waiter(execution):
        try:
            yield execution.done
        except HostDownError as exc:
            caught.append(exc.host_name)

    sim.process(waiter(e1))
    sim.process(waiter(e2))
    sim.call_at(3.0, lambda: host.fail())
    sim.run()
    assert caught == ["h0", "h0"]
    assert host.state is HostState.DOWN


def test_execute_on_down_host_raises():
    sim = Simulator()
    host = make_host(sim)
    host.fail()
    with pytest.raises(HostDownError):
        host.execute(work=1.0)


def test_recover_allows_new_work():
    sim = Simulator()
    host = make_host(sim)
    host.fail()
    host.recover()
    assert host.is_up()
    execution = host.execute(work=2.0)
    sim.run()
    assert execution.done.triggered


def test_double_fail_and_double_recover_are_noops():
    sim = Simulator()
    host = make_host(sim)
    host.fail()
    host.fail()
    host.recover()
    host.recover()
    assert host.is_up()


def test_completed_counter():
    sim = Simulator()
    host = make_host(sim)
    for _ in range(3):
        host.execute(work=1.0)
    sim.run()
    assert host.completed_count == 3


def test_negative_work_rejected():
    sim = Simulator()
    host = make_host(sim)
    with pytest.raises(Exception):
        host.execute(work=-1.0)


def test_negative_bg_load_rejected():
    sim = Simulator()
    host = make_host(sim)
    with pytest.raises(Exception):
        host.set_bg_load(-0.1)


def test_hostspec_validation():
    with pytest.raises(ValueError):
        HostSpec(name="bad", speed=0.0)
    with pytest.raises(ValueError):
        HostSpec(name="bad", memory_mb=0)
    with pytest.raises(ValueError):
        HostSpec(name="bad", thrash_factor=0.0)


def test_busy_time_accumulates_only_when_running():
    sim = Simulator()
    host = make_host(sim)
    host.execute(work=5.0)
    sim.run()
    sim.call_at(20.0, lambda: None)
    sim.run()
    assert host.busy_time == pytest.approx(5.0)

"""Performance-fault injection: scripted slowdowns and stochastic
flapping, with the same edge-case guarantees as the crash injectors."""

import pytest

from repro.sim import Host, HostSpec, Simulator
from repro.sim.failures import FailureInjector
from repro.sim.host import SimulationError


def make_host(sim, speed=1.0, name="h0"):
    return Host(sim, HostSpec(name=name, speed=speed, memory_mb=256))


class TestHostSlowdownModel:
    def test_slowdown_divides_rate(self):
        sim = Simulator()
        host = make_host(sim)
        host.set_slowdown(4.0)
        execution = host.execute(work=10.0)
        sim.run()
        assert execution.finished_at == pytest.approx(40.0)

    def test_mid_flight_slowdown_stretches_the_remainder(self):
        # 5 of 10 work at nominal rate, then the rest at 1/10th:
        # finish = 5 + 10*5 = 55
        sim = Simulator()
        host = make_host(sim)
        execution = host.execute(work=10.0)
        sim.call_at(5.0, lambda: host.set_slowdown(10.0))
        sim.run()
        assert execution.finished_at == pytest.approx(55.0)

    def test_restore_reschedules_completion(self):
        # 5 work at nominal, 10s degraded 10x (1 work), 4 work nominal
        sim = Simulator()
        host = make_host(sim)
        execution = host.execute(work=10.0)
        sim.call_at(5.0, lambda: host.set_slowdown(10.0))
        sim.call_at(15.0, lambda: host.set_slowdown(1.0))
        sim.run()
        assert execution.finished_at == pytest.approx(19.0)

    def test_factor_below_one_rejected(self):
        sim = Simulator()
        host = make_host(sim)
        with pytest.raises(SimulationError):
            host.set_slowdown(0.5)

    def test_slowdown_does_not_mark_host_down(self):
        sim = Simulator()
        host = make_host(sim)
        host.set_slowdown(8.0)
        assert host.is_up()  # slow is not dead


class TestScheduledSlowdown:
    def test_slowdown_interval_logged_and_paired(self):
        sim = Simulator()
        host = make_host(sim)
        injector = FailureInjector(sim)
        injector.schedule_host_slowdown(host, start=10.0, duration=20.0,
                                        factor=5.0)
        sim.run()
        assert injector.slowdown_intervals("h0") == [(10.0, 30.0)]
        kinds = [(e.kind, e.factor) for e in injector.log]
        assert kinds == [("slow", 5.0), ("normal", 1.0)]

    def test_past_event_rejected(self):
        sim = Simulator()
        host = make_host(sim)
        injector = FailureInjector(sim)
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            injector.schedule_host_slowdown(host, start=1.0, duration=2.0,
                                            factor=2.0)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        host = make_host(sim)
        injector = FailureInjector(sim)
        with pytest.raises(ValueError):
            injector.schedule_host_slowdown(host, start=0.0, duration=0.0,
                                            factor=2.0)
        with pytest.raises(ValueError):
            injector.schedule_host_slowdown(host, start=0.0, duration=1.0,
                                            factor=1.0)

    def test_overlapping_slowdowns_are_duplicate_tolerant(self):
        # mirrors downtime_intervals: a host already degraded stays at
        # its current factor and the overlap logs nothing extra
        sim = Simulator()
        host = make_host(sim)
        injector = FailureInjector(sim)
        injector.schedule_host_slowdown(host, start=10.0, duration=20.0,
                                        factor=5.0)
        injector.schedule_host_slowdown(host, start=15.0, duration=5.0,
                                        factor=3.0)
        sim.run()
        # second "slow" at 15 is a no-op; its "normal" at 20 restores
        assert injector.slowdown_intervals("h0") == [(10.0, 20.0)]
        assert host.slowdown == 1.0

    def test_crash_and_slowdown_logs_are_independent(self):
        sim = Simulator()
        host = make_host(sim)
        injector = FailureInjector(sim)
        injector.schedule_outage(host, start=5.0, duration=5.0)
        injector.schedule_host_slowdown(host, start=20.0, duration=10.0,
                                        factor=2.0)
        sim.run()
        assert injector.downtime_intervals("h0") == [(5.0, 10.0)]
        assert injector.slowdown_intervals("h0") == [(20.0, 30.0)]


class TestFlapping:
    def test_flapping_produces_paired_intervals(self):
        sim = Simulator(seed=0)
        host = make_host(sim)
        injector = FailureInjector(sim)
        injector.start_flapping(host, mean_normal_s=10.0, mean_slow_s=5.0,
                                factor=4.0)
        sim.run(until=200.0)
        intervals = injector.slowdown_intervals("h0")
        assert intervals, "no flaps in 200s with a 10s mean normal phase"
        for slow_at, normal_at in intervals[:-1]:
            assert normal_at is not None and normal_at > slow_at

    def test_flapping_is_deterministic_per_stream(self):
        def run_once():
            sim = Simulator(seed=7)
            host = make_host(sim)
            injector = FailureInjector(sim)
            injector.start_flapping(host, mean_normal_s=10.0,
                                    mean_slow_s=5.0, factor=4.0)
            sim.run(until=100.0)
            return injector.slowdown_intervals("h0")

        assert run_once() == run_once()

    def test_adding_a_flapper_does_not_perturb_other_hosts(self):
        # the crash injector on h0 must draw the same fate whether or
        # not h1 flaps: per-target streams compose
        def crash_log(with_flapper):
            sim = Simulator(seed=3)
            h0 = make_host(sim, name="h0")
            h1 = make_host(sim, name="h1")
            injector = FailureInjector(sim)
            injector.start_random(h0, mtbf_s=20.0, mttr_s=5.0)
            if with_flapper:
                injector.start_flapping(h1, mean_normal_s=8.0,
                                        mean_slow_s=4.0, factor=3.0)
            sim.run(until=150.0)
            return injector.downtime_intervals("h0")

        assert crash_log(False) == crash_log(True)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        host = make_host(sim)
        injector = FailureInjector(sim)
        with pytest.raises(ValueError):
            injector.start_flapping(host, mean_normal_s=0.0, mean_slow_s=5.0,
                                    factor=2.0)
        with pytest.raises(ValueError):
            injector.start_flapping(host, mean_normal_s=5.0, mean_slow_s=5.0,
                                    factor=1.0)

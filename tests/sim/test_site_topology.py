"""Unit tests for sites, groups and topology construction."""

import pytest

from repro.sim import HostSpec, Simulator, Topology, TopologyBuilder
from repro.sim.site import GroupSpec, Site, SiteSpec, make_uniform_site
from repro.sim.topology import star_topology, two_site_topology


def simple_site_spec():
    hosts = (
        HostSpec(name="h0", speed=1.0),
        HostSpec(name="h1", speed=2.0),
        HostSpec(name="h2", speed=1.5),
    )
    return SiteSpec(
        name="syr",
        groups=(GroupSpec(name="g0", leader="h0", hosts=hosts),),
        server="h0",
    )


def test_site_instantiation_and_lookup():
    sim = Simulator()
    site = Site(sim, simple_site_spec())
    assert site.name == "syr"
    assert len(site) == 3
    assert site.host("h1").spec.speed == 2.0
    assert site.server_host.name == "h0"
    assert site.group_of("h2").name == "g0"


def test_site_unknown_host_raises():
    sim = Simulator()
    site = Site(sim, simple_site_spec())
    with pytest.raises(Exception):
        site.host("zz")
    with pytest.raises(Exception):
        site.group_of("zz")


def test_up_hosts_excludes_failed():
    sim = Simulator()
    site = Site(sim, simple_site_spec())
    site.host("h1").fail()
    names = {h.name for h in site.up_hosts()}
    assert names == {"h0", "h2"}


def test_group_leader_must_be_member():
    with pytest.raises(ValueError):
        GroupSpec(name="g", leader="absent", hosts=(HostSpec(name="h0"),))


def test_duplicate_host_names_rejected_in_group_and_site():
    with pytest.raises(ValueError):
        GroupSpec(name="g", leader="h0",
                  hosts=(HostSpec(name="h0"), HostSpec(name="h0")))
    g1 = GroupSpec(name="g1", leader="x", hosts=(HostSpec(name="x"),))
    g2 = GroupSpec(name="g2", leader="x2", hosts=(HostSpec(name="x2"), HostSpec(name="x")))
    with pytest.raises(ValueError):
        SiteSpec(name="s", groups=(g1, g2))


def test_server_defaults_to_first_host():
    g = GroupSpec(name="g", leader="a", hosts=(HostSpec(name="a"), HostSpec(name="b")))
    spec = SiteSpec(name="s", groups=(g,))
    assert spec.server_name == "a"


def test_server_must_be_site_host():
    g = GroupSpec(name="g", leader="a", hosts=(HostSpec(name="a"),))
    with pytest.raises(ValueError):
        SiteSpec(name="s", groups=(g,), server="elsewhere")


def test_make_uniform_site_groups():
    sim = Simulator()
    site = make_uniform_site(sim, "u", n_hosts=5, group_size=2)
    assert len(site) == 5
    assert len(site.groups) == 3  # 2 + 2 + 1


def test_topology_builder_end_to_end():
    topo = (
        TopologyBuilder(seed=7)
        .lan_defaults(latency_s=0.001, bandwidth_mbps=12.0)
        .wan_defaults(latency_s=0.04, bandwidth_mbps=1.5)
        .site("syr", hosts=[("grad1", 1.0, 128), ("grad2", 2.0, 256)])
        .site("cs", n_hosts=4, speed=1.5)
        .wan("syr", "cs", latency_s=0.02, bandwidth_mbps=2.0)
        .build()
    )
    assert set(topo.site_names) == {"syr", "cs"}
    assert topo.host("grad2").spec.speed == 2.0
    assert topo.site_of_host("cs-h01").name == "cs"
    assert topo.network.wan_link("syr", "cs").spec.latency_s == pytest.approx(0.02)


def test_topology_duplicate_site_or_host_rejected():
    with pytest.raises(Exception):
        (
            TopologyBuilder()
            .site("a", n_hosts=1)
            .site("a", n_hosts=1)
            .build()
        )
    with pytest.raises(Exception):
        (
            TopologyBuilder()
            .site("a", hosts=[("x", 1.0, 64)])
            .site("b", hosts=[("x", 1.0, 64)])
            .build()
        )


def test_builder_requires_hosts():
    with pytest.raises(ValueError):
        TopologyBuilder().site("empty")
    with pytest.raises(Exception):
        TopologyBuilder().build()


def test_two_site_topology_shape():
    topo = two_site_topology(hosts_per_site=3)
    assert len(topo.site_names) == 2
    assert len(topo.all_hosts) == 6
    speeds = {h.spec.speed for h in topo.site("site-a")}
    assert speeds == {1.0, 1.5, 2.0}


def test_star_topology_neighbor_ordering():
    topo = star_topology(n_sites=4, hosts_per_site=2)
    neighbors = topo.neighbor_sites("site-0")
    # latency grows with index distance, so ordering is 1, 2, 3
    assert neighbors == ["site-1", "site-2", "site-3"]
    assert topo.neighbor_sites("site-0", k=2) == ["site-1", "site-2"]
    assert topo.neighbor_sites("site-0", k=0) == []


def test_neighbor_sites_validates_inputs():
    topo = star_topology(n_sites=3, hosts_per_site=1)
    with pytest.raises(Exception):
        topo.neighbor_sites("nope")
    with pytest.raises(ValueError):
        topo.neighbor_sites("site-0", k=-1)


def test_neighbor_sites_k_larger_than_available():
    topo = star_topology(n_sites=3, hosts_per_site=1)
    assert topo.neighbor_sites("site-0", k=99) == ["site-1", "site-2"]

"""Tests: exception propagation through AllOf/AnyOf composites."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator, Timeout


def failing_process(sim, delay, message):
    def gen():
        yield Timeout(delay)
        raise RuntimeError(message)

    return sim.process(gen())


def ok_process(sim, delay, value):
    def gen():
        yield Timeout(delay)
        return value

    return sim.process(gen())


class TestAllOfFailures:
    def test_failing_child_raises_in_waiter(self):
        sim = Simulator()

        def waiter():
            try:
                yield AllOf([
                    ok_process(sim, 1.0, "a"),
                    failing_process(sim, 2.0, "boom"),
                    ok_process(sim, 9.0, "c"),
                ])
            except RuntimeError as exc:
                return (str(exc), sim.now)

        message, t = sim.run_until_complete(sim.process(waiter()))
        assert message == "boom"
        assert t == pytest.approx(2.0)  # fails fast, not at t=9

    def test_failed_signal_child(self):
        sim = Simulator()
        sig = sim.signal("s")
        sim.call_at(1.0, lambda: sig.fail(ValueError("bad")))

        def waiter():
            try:
                yield AllOf([Timeout(5.0), sig])
            except ValueError:
                return "caught"

        assert sim.run_until_complete(sim.process(waiter())) == "caught"

    def test_all_successful_still_works(self):
        sim = Simulator()

        def waiter():
            values = yield AllOf([ok_process(sim, 1.0, 1),
                                  ok_process(sim, 2.0, 2)])
            return values

        assert sim.run_until_complete(sim.process(waiter())) == [1, 2]


class TestAnyOfFailures:
    def test_first_child_failing_propagates(self):
        sim = Simulator()

        def waiter():
            try:
                yield AnyOf([
                    failing_process(sim, 1.0, "first"),
                    ok_process(sim, 5.0, "slow"),
                ])
            except RuntimeError as exc:
                return str(exc)

        assert sim.run_until_complete(sim.process(waiter())) == "first"

    def test_success_before_failure_wins(self):
        sim = Simulator()

        def waiter():
            index, value = yield AnyOf([
                ok_process(sim, 1.0, "fast"),
                failing_process(sim, 5.0, "late-boom"),
            ])
            return (index, value)

        index, value = sim.run_until_complete(sim.process(waiter()))
        assert (index, value) == (0, "fast")

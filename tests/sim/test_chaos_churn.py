"""The churn chaos campaign: invariants I14/I15/I16, determinism, neutrality.

I14 — no placement on a non-ACTIVE host after its transition is
visible.  I15 — a graceful drain loses no work: every task evicted by a
membership change completes elsewhere (or its application dies typed).
I16 — rejoin convergence: a churned host whose last transition is a
rejoin ends the campaign ACTIVE and schedulable again.  And the
feature's existence must not move a byte of the pre-existing presets'
reports, nor may an armed-but-idle configuration draw any extra RNG.
"""

from dataclasses import replace

import pytest

from repro.sim.chaos import (
    ChaosConfig,
    churn_smoke_config,
    run_campaign,
    smoke_config,
)


@pytest.fixture(scope="module")
def churn_report():
    return run_campaign(churn_smoke_config(seed=0))


def test_churn_campaign_passes_all_invariants(churn_report):
    assert churn_report.ok, churn_report.violations


def test_churn_is_actually_exercised(churn_report):
    """The preset is tuned so drains genuinely evict running work —
    otherwise I15 would pass vacuously."""
    membership = churn_report.membership
    assert membership is not None
    assert len(membership["targets"]) == 9
    assert membership["drain_affected_tasks"] >= 1
    transitions = [t["transition"] for t in membership["transitions"]]
    assert transitions.count("drain") == 9
    assert transitions.count("depart") == 9
    assert transitions.count("rejoin") == 9
    assert all(
        o["status"] == "completed" for o in churn_report.outcomes.values()
    ), "a drain lost work (I15)"


def test_transitions_are_ordered_and_epoch_stamped(churn_report):
    times = [t["time"] for t in churn_report.membership["transitions"]]
    assert times == sorted(times)
    for target in churn_report.membership["targets"]:
        epochs = [
            t["epoch"]
            for t in churn_report.membership["transitions"]
            if t["host"] == target
        ]
        assert epochs == sorted(epochs)  # epochs never regress
        assert epochs[-1] >= 1  # the rejoin happened under a new epoch


def test_churn_campaign_is_byte_deterministic():
    first = run_campaign(churn_smoke_config(seed=0))
    second = run_campaign(churn_smoke_config(seed=0))
    assert first.trace_hash == second.trace_hash
    assert first.metrics_hash == second.metrics_hash
    assert first.campaign_hash() == second.campaign_hash()


@pytest.mark.parametrize("seed", [1, 2])
def test_other_seeds_hold_the_invariants(seed):
    report = run_campaign(churn_smoke_config(seed=seed))
    assert report.ok, report.violations
    assert report.membership["drain_affected_tasks"] >= 1
    assert all(
        o["status"] == "completed" for o in report.outcomes.values()
    )


def test_report_serialises_the_membership_section(churn_report):
    payload = churn_report.to_dict()
    assert payload["config"]["n_churn_hosts"] == 9
    assert {"targets", "drain_affected_tasks", "transitions"} \
        <= set(payload["membership"])
    entry = payload["membership"]["transitions"][0]
    assert {"time", "host", "site", "transition", "epoch"} <= set(entry)


def test_preexisting_presets_stay_byte_neutral():
    """With churn off, the report dict carries no churn keys and no
    membership section, so every committed campaign hash predating
    DESIGN §17 still verifies."""
    payload = run_campaign(smoke_config(seed=0)).to_dict()
    assert "membership" not in payload
    for key in (
        "n_churn_hosts", "churn_start_s", "churn_window_s",
        "churn_drain_deadline_s", "churn_rejoin_after_s",
    ):
        assert key not in payload["config"]


def test_armed_but_idle_config_draws_zero_extra_rng():
    """Satellite 5's neutrality pin: churn *knobs* set but zero churn
    hosts must replay the default campaign byte for byte — proof that
    an unarmed deployment never touches the churn RNG streams."""
    baseline = run_campaign(smoke_config(seed=0))
    idle = run_campaign(
        replace(
            smoke_config(seed=0),
            churn_start_s=10.0,
            churn_window_s=5.0,
            churn_drain_deadline_s=3.0,
            churn_rejoin_after_s=20.0,
        )
    )
    assert idle.trace_hash == baseline.trace_hash
    assert idle.metrics_hash == baseline.metrics_hash
    assert idle.membership is None


def test_churn_config_validation():
    with pytest.raises(ValueError):
        ChaosConfig(n_churn_hosts=-1)
    with pytest.raises(ValueError):
        ChaosConfig(n_churn_hosts=2, churn_window_s=0.0)
    with pytest.raises(ValueError):
        ChaosConfig(n_churn_hosts=2, churn_drain_deadline_s=0.0)
    with pytest.raises(ValueError):
        ChaosConfig(n_churn_hosts=2, churn_rejoin_after_s=-1.0)

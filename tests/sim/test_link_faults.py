"""Link outages, WAN partitions, site outages and injector guards."""

import pytest

from repro.sim import (
    FailureInjector,
    LinkDownError,
    LinkSpec,
    Simulator,
    SimulationError,
    TopologyBuilder,
)
from repro.sim.network import Link


def _three_site_topology(seed=0):
    builder = TopologyBuilder(seed=seed).wan_defaults(0.02, 2.0)
    builder.site("alpha", hosts=[("a1", 1.0, 256), ("a2", 1.0, 256)])
    builder.site("beta", hosts=[("b1", 1.0, 256)])
    builder.site("gamma", hosts=[("g1", 1.0, 256)])
    return builder.build()


# -- single-link faults ----------------------------------------------------


def test_link_failure_kills_in_flight_transfer():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=1.0))
    t = link.transfer(size_mb=10.0)
    caught = {}

    def watch():
        try:
            yield t.done
        except LinkDownError as exc:
            caught["exc"] = exc
            caught["at"] = sim.now

    sim.process(watch())
    sim.call_at(2.0, link.fail)
    sim.run()
    assert isinstance(caught["exc"], LinkDownError)
    assert caught["at"] == pytest.approx(2.0)
    assert link.failures == 1
    assert link.n_active == 0


def test_link_failure_kills_latency_phase_transfer():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=1.0, bandwidth_mbps=1.0))
    t = link.transfer(size_mb=5.0)
    caught = {}

    def watch():
        try:
            yield t.done
        except LinkDownError:
            caught["at"] = sim.now

    sim.process(watch())
    sim.call_at(0.5, link.fail)  # mid-latency
    sim.run()
    assert "at" in caught


def test_transfer_on_down_link_fails_immediately():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=1.0))
    link.fail()
    caught = {}

    def attempt():
        t = link.transfer(size_mb=1.0)
        try:
            yield t.done
        except LinkDownError:
            caught["at"] = sim.now

    sim.process(attempt())
    sim.run()
    assert caught["at"] == pytest.approx(0.0)


def test_link_recovery_allows_new_transfers():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=1.0))
    link.fail()
    sim.call_at(3.0, link.recover)
    finished = {}

    def attempt():
        from repro.sim.kernel import Timeout

        yield Timeout(4.0)
        t = link.transfer(size_mb=2.0)
        yield t.done
        finished["at"] = sim.now

    sim.process(attempt())
    sim.run()
    assert link.up
    # started at t=4 (after recovery), 2 MB at 1 MB/s
    assert finished["at"] == pytest.approx(6.0)


def test_fail_and_recover_are_idempotent():
    sim = Simulator()
    link = Link(sim, LinkSpec())
    link.fail()
    link.fail()
    assert link.failures == 1
    link.recover()
    link.recover()
    assert link.up


def test_message_quality_knob_validation():
    topo = _three_site_topology()
    network = topo.network
    with pytest.raises(SimulationError):
        network.set_message_loss(1.0)
    with pytest.raises(SimulationError):
        network.set_message_delay(-0.1)
    with pytest.raises(SimulationError):
        network.set_message_loss(0.1, site_a="alpha")  # missing site_b
    network.set_message_loss(0.25, site_a="alpha", site_b="beta")
    assert network.wan_link("alpha", "beta").loss_prob == 0.25
    assert network.wan_link("alpha", "gamma").loss_prob == 0.0
    network.set_message_delay(0.05)
    assert network.wan_link("beta", "gamma").extra_delay_s == 0.05


# -- WAN partitions --------------------------------------------------------


def test_partition_downs_exactly_the_crossing_links():
    topo = _three_site_topology()
    network = topo.network
    downed = network.partition([["alpha"], ["beta", "gamma"]])
    assert network.partitioned
    assert not network.reachable("alpha", "beta")
    assert not network.reachable("alpha", "gamma")
    assert network.reachable("beta", "gamma")
    assert network.reachable("alpha", "alpha")  # LAN untouched
    assert sorted(downed) == [("alpha", "beta"), ("alpha", "gamma")]


def test_heal_restores_only_partition_downed_links():
    topo = _three_site_topology()
    network = topo.network
    # beta-gamma goes down independently, before the partition
    network.wan_link("beta", "gamma").fail()
    network.partition([["alpha"], ["beta", "gamma"]])
    network.heal_partition()
    assert not network.partitioned
    assert network.reachable("alpha", "beta")
    assert network.reachable("alpha", "gamma")
    # the independent outage is NOT healed by the partition ending
    assert not network.reachable("beta", "gamma")


def test_partition_validation():
    topo = _three_site_topology()
    network = topo.network
    with pytest.raises(SimulationError):
        network.partition([["alpha"], ["beta"]])  # gamma unassigned
    with pytest.raises(SimulationError):
        network.partition([["alpha", "beta"], ["beta", "gamma"]])
    with pytest.raises(SimulationError):
        network.partition([["alpha"], ["beta", "gamma", "nope"]])
    network.partition([["alpha"], ["beta", "gamma"]])
    with pytest.raises(SimulationError):
        network.partition([["alpha", "beta"], ["gamma"]])  # already active


def test_scheduled_partition_kills_inflight_wan_transfer_and_heals():
    topo = _three_site_topology()
    sim = topo.sim
    network = topo.network
    injector = FailureInjector(sim)
    injector.schedule_partition(
        network, [["alpha"], ["beta", "gamma"]], start=1.0, duration=5.0
    )
    caught = {}

    def cross():
        t = network.transfer("a1", "b1", 100.0)  # long WAN transfer
        try:
            yield t.done
        except LinkDownError:
            caught["at"] = sim.now

    sim.process(cross())
    sim.run(until=10.0)
    assert caught["at"] == pytest.approx(1.0)
    assert network.reachable("alpha", "beta")  # healed at t=6
    kinds = [(e.host, e.kind) for e in injector.log]
    assert ("partition:alpha | beta,gamma", "partition") in kinds
    assert ("partition:alpha | beta,gamma", "heal") in kinds


# -- whole-site outages ----------------------------------------------------


def test_site_outage_downs_hosts_and_links_then_restores():
    topo = _three_site_topology()
    sim = topo.sim
    network = topo.network
    injector = FailureInjector(sim)
    injector.schedule_site_outage(topo.site("alpha"), network, start=2.0,
                                  duration=3.0)
    sim.run(until=3.0)
    assert not topo.host("a1").is_up()
    assert not topo.host("a2").is_up()
    assert not network.lan_link("alpha").up
    assert not network.reachable("alpha", "beta")
    assert network.reachable("beta", "gamma")
    sim.run(until=6.0)
    assert topo.host("a1").is_up()
    assert network.lan_link("alpha").up
    assert network.reachable("alpha", "beta")
    markers = [e.kind for e in injector.log if e.host == "site:alpha"]
    assert markers == ["down", "up"]


# -- injector guards (scripted) --------------------------------------------


def test_schedule_rejects_past_events():
    topo = _three_site_topology()
    sim = topo.sim
    injector = FailureInjector(sim)
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        injector.schedule(topo.host("a1"), time=4.0)
    with pytest.raises(ValueError):
        injector.schedule_link(topo.network.lan_link("alpha"), time=4.9)
    with pytest.raises(ValueError):
        injector.schedule_partition(
            topo.network, [["alpha"], ["beta", "gamma"]], start=1.0, duration=2.0
        )
    with pytest.raises(ValueError):
        injector.schedule_site_outage(
            topo.site("alpha"), topo.network, start=3.0, duration=2.0
        )
    # now or later is fine
    injector.schedule(topo.host("a1"), time=5.0)


def test_duplicate_down_events_are_tolerated():
    """Overlapping scripted + stochastic injectors must not corrupt the
    downtime intervals: a second 'down' while already down is a no-op."""
    topo = _three_site_topology()
    sim = topo.sim
    injector = FailureInjector(sim)
    host = topo.host("a1")
    injector.schedule(host, time=1.0, kind="down")
    injector.schedule(host, time=2.0, kind="down")  # duplicate
    injector.schedule(host, time=4.0, kind="up")
    injector.schedule(host, time=5.0, kind="up")  # duplicate
    sim.run(until=10.0)
    # only effective changes were logged
    assert [(e.time, e.kind) for e in injector.log] == [(1.0, "down"), (4.0, "up")]
    assert injector.downtime_intervals("a1") == [(1.0, 4.0)]


def test_downtime_intervals_tolerates_raw_duplicate_log_entries():
    """Even if duplicates somehow land in the log, pairing stays sane."""
    from repro.sim.failures import FailureEvent

    sim = Simulator()
    injector = FailureInjector(sim)
    injector.log.extend([
        FailureEvent(1.0, "h", "down"),
        FailureEvent(2.0, "h", "down"),
        FailureEvent(3.0, "h", "up"),
        FailureEvent(7.0, "h", "up"),
        FailureEvent(8.0, "h", "down"),
    ])
    assert injector.downtime_intervals("h") == [(1.0, 3.0), (8.0, None)]


def test_stochastic_link_injector_is_deterministic():
    def run_once():
        topo = _three_site_topology(seed=7)
        injector = FailureInjector(topo.sim)
        injector.start_random_link(
            topo.network.wan_link("alpha", "beta"), mtbf_s=5.0, mttr_s=2.0
        )
        topo.sim.run(until=60.0)
        return [(e.time, e.kind) for e in injector.log]

    first, second = run_once(), run_once()
    assert first == second
    assert len(first) >= 2

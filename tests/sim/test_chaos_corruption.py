"""The corruption chaos campaign: invariants I12/I13, determinism, neutrality.

I12 — no dirty consumption: every value handed to a task matched its
producer's recorded hash.  I13 — repair or typed death: every incident
in a *completed* application resolved ``refetched`` or ``regenerated``;
``poisoned`` incidents only ever belong to applications that failed
typed.  And the feature's existence must not move a byte of the
pre-existing presets' reports (the committed campaign hashes gate on
that).
"""

import pytest

from repro.sim.chaos import (
    ChaosConfig,
    corruption_smoke_config,
    run_campaign,
    smoke_config,
)


@pytest.fixture(scope="module")
def corruption_report():
    return run_campaign(corruption_smoke_config(seed=0))


def test_corruption_campaign_passes_all_invariants(corruption_report):
    assert corruption_report.ok, corruption_report.violations


def test_the_ladder_actually_exercised(corruption_report):
    """Seed 0 is chosen to cross sites: detections happen AND every
    application still completes — the repairs worked end to end."""
    integrity = corruption_report.integrity
    assert integrity is not None
    assert integrity["corruptions_detected"] >= 1
    assert integrity["refetches"] + integrity["regenerations"] >= 1
    assert integrity["dirty_consumptions"] == 0  # I12, directly
    assert all(
        o["status"] == "completed"
        for o in corruption_report.outcomes.values()
    )
    for incident in integrity["incidents"]:
        assert incident["resolution"] in ("refetched", "regenerated")


def test_corruption_campaign_is_byte_deterministic():
    first = run_campaign(corruption_smoke_config(seed=0))
    second = run_campaign(corruption_smoke_config(seed=0))
    assert first.trace_hash == second.trace_hash
    assert first.metrics_hash == second.metrics_hash
    assert first.campaign_hash() == second.campaign_hash()


@pytest.mark.parametrize("seed", [1, 2])
def test_other_seeds_hold_the_invariants(seed):
    report = run_campaign(corruption_smoke_config(seed=seed))
    assert report.ok, report.violations


def test_report_serialises_the_integrity_section(corruption_report):
    payload = corruption_report.to_dict()
    assert "integrity" in payload
    assert payload["config"]["data_integrity"] is True
    assert {
        "corruptions_detected", "refetches", "regenerations",
        "poisoned", "artifacts_lost", "incidents", "dirty_consumptions",
    } <= set(payload["integrity"])


def test_preexisting_presets_stay_byte_neutral():
    """The neutrality pin: with integrity off, the report dict carries
    no corruption keys and no integrity section, so every committed
    campaign hash predating DESIGN §16 still verifies."""
    payload = run_campaign(smoke_config(seed=0)).to_dict()
    assert "integrity" not in payload
    for key in (
        "data_integrity", "n_corrupt_links", "link_corrupt_prob",
        "link_truncate_prob", "corruption_at_s", "artifact_loss_at_s",
        "journal_corrupt_at_s",
    ):
        assert key not in payload["config"]


def test_corruption_config_validation():
    with pytest.raises(ValueError):
        ChaosConfig(n_corrupt_links=-1)
    with pytest.raises(ValueError):
        ChaosConfig(link_corrupt_prob=0.6, link_truncate_prob=0.5)
    with pytest.raises(ValueError):
        ChaosConfig(n_corrupt_links=1, link_corrupt_prob=0.1)  # needs integrity on

"""Regression tests: the float-stall guard in processor-sharing servers.

At large virtual times, a tiny residual (left by inexact credit
subtraction) can have an ETA below the clock's ulp; without the guard,
the completion tick re-fires at the same instant forever (the bug that
froze the campus-day scenario at t=1387.07).
"""

import pytest

from repro.sim import Host, HostSpec, LinkSpec, Simulator
from repro.sim.network import Link


class TestLinkStallGuard:
    def test_subulp_residual_completes(self):
        sim = Simulator()
        # jump the clock far enough that ulp(now) is significant
        sim.call_at(1e9, lambda: None)
        sim.run()
        link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=1.0))
        t = link.transfer(size_mb=1e-18)  # ETA << ulp(1e9)
        sim.run()
        assert t.done.triggered
        assert link.n_active == 0

    def test_normal_transfer_unaffected_at_large_time(self):
        sim = Simulator()
        sim.call_at(1e9, lambda: None)
        sim.run()
        link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=2.0))
        t = link.transfer(size_mb=10.0)
        sim.run()
        assert t.finished_at == pytest.approx(1e9 + 5.0)

    def test_mixed_residual_and_real_transfer(self):
        sim = Simulator()
        sim.call_at(1e9, lambda: None)
        sim.run()
        link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=1.0))
        tiny = link.transfer(size_mb=1e-18)
        big = link.transfer(size_mb=4.0)
        sim.run()
        assert tiny.done.triggered
        assert big.done.triggered
        assert big.finished_at == pytest.approx(1e9 + 4.0, rel=1e-6)


class TestHostStallGuard:
    def test_subulp_residual_work_completes(self):
        sim = Simulator()
        sim.call_at(1e9, lambda: None)
        sim.run()
        host = Host(sim, HostSpec(name="h", speed=1.0))
        execution = host.execute(work=1e-18)
        sim.run()
        assert execution.done.triggered
        assert host.n_running == 0
        assert host.completed_count == 1

    def test_bounded_event_count_with_many_tiny_jobs(self):
        """No event storm: tiny jobs complete in O(jobs) events."""
        sim = Simulator()
        sim.call_at(1e9, lambda: None)
        sim.run()
        host = Host(sim, HostSpec(name="h", speed=1.0))
        executions = [host.execute(work=1e-17) for _ in range(50)]
        before = sim.events_processed
        sim.run()
        assert all(e.done.triggered for e in executions)
        assert sim.events_processed - before < 50 * 20

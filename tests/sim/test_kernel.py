"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_at_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.call_at(5.0, lambda: seen.append(("b", sim.now)))
    sim.call_at(1.0, lambda: seen.append(("a", sim.now)))
    sim.call_at(9.0, lambda: seen.append(("c", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 5.0), ("c", 9.0)]


def test_ties_broken_in_schedule_order():
    sim = Simulator()
    seen = []
    for tag in "abc":
        sim.call_at(2.0, lambda t=tag: seen.append(t))
    sim.run()
    assert seen == ["a", "b", "c"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda: seen.append(1))
    sim.call_at(10.0, lambda: seen.append(10))
    sim.run(until=5.0)
    assert seen == [1]
    assert sim.now == 5.0
    sim.run()
    assert seen == [1, 10]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.call_at(3.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_process_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield Timeout(4.0)
        return sim.now

    p = sim.process(proc())
    result = sim.run_until_complete(p)
    assert result == 4.0


def test_process_return_value_delivered_to_waiter():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    p = sim.process(parent())
    assert sim.run_until_complete(p) == 43


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        got = yield Timeout(1.0, value="payload")
        return got

    assert sim.run_until_complete(sim.process(proc())) == "payload"


def test_signal_wakes_all_waiters_with_value():
    sim = Simulator()
    sig = sim.signal("go")
    results = []

    def waiter(tag):
        value = yield sig
        results.append((tag, value, sim.now))

    sim.process(waiter("w1"))
    sim.process(waiter("w2"))
    sim.call_at(3.0, lambda: sig.succeed("data"))
    sim.run()
    assert results == [("w1", "data", 3.0), ("w2", "data", 3.0)]


def test_signal_fires_for_late_subscriber():
    sim = Simulator()
    sig = sim.signal()
    sig.succeed(7)

    def waiter():
        value = yield sig
        return value

    assert sim.run_until_complete(sim.process(waiter())) == 7


def test_signal_double_fire_rejected():
    sim = Simulator()
    sig = sim.signal()
    sig.succeed()
    with pytest.raises(SimulationError):
        sig.succeed()


def test_signal_fail_raises_in_waiter():
    sim = Simulator()
    sig = sim.signal()

    def waiter():
        try:
            yield sig
        except ValueError as exc:
            return f"caught:{exc}"

    p = sim.process(waiter())
    sim.call_at(1.0, lambda: sig.fail(ValueError("boom")))
    assert sim.run_until_complete(p) == "caught:boom"


def test_process_exception_propagates_to_run():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("kaput")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="kaput"):
        sim.run()


def test_process_exception_observed_by_waiter_not_reraised():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("kaput")

    def parent():
        try:
            yield sim.process(bad())
        except RuntimeError:
            return "handled"

    p = sim.process(parent())
    assert sim.run_until_complete(p) == "handled"


def test_all_of_waits_for_every_child():
    sim = Simulator()

    def proc():
        values = yield AllOf([Timeout(1.0, "a"), Timeout(5.0, "b"), Timeout(3.0, "c")])
        return (values, sim.now)

    values, t = sim.run_until_complete(sim.process(proc()))
    assert values == ["a", "b", "c"]
    assert t == 5.0


def test_all_of_empty_completes_immediately():
    sim = Simulator()

    def proc():
        values = yield AllOf([])
        return values

    assert sim.run_until_complete(sim.process(proc())) == []


def test_any_of_fires_on_first_child():
    sim = Simulator()

    def proc():
        index, value = yield AnyOf([Timeout(9.0, "slow"), Timeout(2.0, "fast")])
        return (index, value, sim.now)

    assert sim.run_until_complete(sim.process(proc())) == (1, "fast", 2.0)


def test_interrupt_raises_inside_process():
    sim = Simulator()

    def victim():
        try:
            yield Timeout(100.0)
        except Interrupt as exc:
            return ("interrupted", exc.cause, sim.now)

    p = sim.process(victim())
    sim.call_at(5.0, lambda: p.interrupt("load-threshold"))
    assert sim.run_until_complete(p) == ("interrupted", "load-threshold", 5.0)


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(1.0)
        return "done"

    p = sim.process(quick())
    sim.run()
    p.interrupt("late")
    sim.run()
    assert p.value == "done"


def test_uninterrupted_timeout_delivers_normally():
    sim = Simulator()
    resumed_values = []

    def victim():
        try:
            value = yield Timeout(10.0, "original")
            resumed_values.append(value)
        except Interrupt:  # pragma: no cover - not expected here
            resumed_values.append("interrupted")

    sim.process(victim())
    sim.run()
    assert resumed_values == ["original"]


def test_interrupt_discards_pending_wait():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield Timeout(10.0, "original")
            log.append("original-delivered")
        except Interrupt:
            got = yield Timeout(5.0, "post-interrupt")
            log.append(got)

    p = sim.process(victim())
    sim.call_at(3.0, lambda: p.interrupt())
    sim.run()
    assert log == ["post-interrupt"]
    # original timeout at t=10 must not have resumed the process a second time
    assert sim.now >= 10.0


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_yielding_non_waitable_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    with pytest.raises(SimulationError, match="non-waitable"):
        sim.run_until_complete(sim.process(bad()))


def test_rng_streams_are_deterministic_and_independent():
    a1 = Simulator(seed=123).rng("alpha").random(5)
    a2 = Simulator(seed=123).rng("alpha").random(5)
    b = Simulator(seed=123).rng("beta").random(5)
    assert list(a1) == list(a2)
    assert list(a1) != list(b)


def test_rng_stream_cached_per_name():
    sim = Simulator(seed=1)
    assert sim.rng("x") is sim.rng("x")


def test_trace_disabled_by_default_and_enabled_on_request():
    sim = Simulator()
    sim.trace("hello", a=1)
    assert sim.trace_log == []
    sim.enable_trace()
    sim.call_at(2.0, lambda: sim.trace("evt", k="v"))
    sim.run()
    assert sim.trace_log == [(2.0, "evt", {"k": "v"})]


def test_run_until_complete_raises_if_unfinished():
    sim = Simulator()

    def forever():
        while True:
            yield Timeout(1.0)

    p = sim.process(forever())
    with pytest.raises(SimulationError, match="did not complete"):
        sim.run_until_complete(p, limit=10.0)


def test_nested_all_any_composition():
    sim = Simulator()

    def proc():
        index, value = yield AnyOf(
            [
                AllOf([Timeout(2.0, "x"), Timeout(4.0, "y")]),
                Timeout(10.0, "slow"),
            ]
        )
        return (index, value, sim.now)

    index, value, t = sim.run_until_complete(sim.process(proc()))
    assert index == 0
    assert value == ["x", "y"]
    assert t == 4.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.call_at(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5

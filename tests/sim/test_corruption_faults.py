"""Data-plane corruption faults: link markers, injector hooks, RNG hygiene.

Simulated corruption never mangles bytes — a completing transfer is
*marked* (``transfer.corruption``) so the pure-evaluation oracle
survives — and every draw comes from a per-link ``corrupt:<name>``
stream that only exists while armed, keeping fault-free runs
byte-identical to the pre-feature baseline.
"""

import pytest

from repro.sim import FailureInjector, LinkSpec, Simulator
from repro.sim.network import Link


def run_transfers(sim, link, n, size_mb=1.0):
    marks = []

    def one():
        t = link.transfer(size_mb=size_mb)
        yield t.done
        marks.append(t.corruption)

    for _ in range(n):
        sim.process(one())
    sim.run()
    return marks


class TestLinkCorruptionMarkers:
    def test_armed_link_marks_transfers_without_mangling(self):
        sim = Simulator()
        link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=100.0))
        link.corrupt_prob = 0.9
        marks = run_transfers(sim, link, 20)
        assert marks.count("bitflip") > 10
        assert link.corruptions == marks.count("bitflip")
        assert all(m in (None, "bitflip") for m in marks)

    def test_truncation_shares_the_single_draw(self):
        sim = Simulator()
        link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=100.0))
        link.corrupt_prob = 0.0
        link.truncate_prob = 0.9
        marks = run_transfers(sim, link, 20)
        assert marks.count("truncation") > 10
        assert "bitflip" not in marks

    def test_unarmed_link_draws_zero_corruption_rng(self):
        """The hash-neutrality guarantee: no armed probability, no
        ``corrupt:*`` stream ever instantiated, no draw consumed."""
        sim = Simulator()
        link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=100.0))
        marks = run_transfers(sim, link, 10)
        assert marks == [None] * 10
        assert not [s for s in sim._rngs if s.startswith("corrupt:")]

    def test_arming_one_link_never_perturbs_another(self):
        """Per-link streams: link B's fate is identical whether or not
        link A is armed alongside it."""
        fates = {}
        for label, arm_a in (("solo", False), ("with-a", True)):
            sim = Simulator()
            a = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=100.0,
                                   name="wan:a"))
            b = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=100.0,
                                   name="wan:b"))
            if arm_a:
                a.corrupt_prob = 0.5
                run_transfers(sim, a, 5)
            b.corrupt_prob = 0.5
            fates[label] = run_transfers(sim, b, 10)
        assert fates["solo"] == fates["with-a"]


class TestInjectorCorruptionHooks:
    def test_schedule_link_corruption_arms_then_disarms(self):
        sim = Simulator()
        link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=100.0,
                                  name="wan:x"))
        injector = FailureInjector(sim)
        injector.schedule_link_corruption(
            link, time=1.0, corrupt_prob=0.4, truncate_prob=0.1, duration=2.0
        )
        sim.run(until=1.5)
        assert link.corrupt_prob == 0.4
        assert link.truncate_prob == 0.1
        sim.run(until=4.0)
        assert link.corrupt_prob == 0.0
        assert [(e.host, e.kind) for e in injector.log] == [
            ("wan:x", "corrupt-armed"), ("wan:x", "normal"),
        ]

    def test_schedule_link_corruption_guards(self):
        sim = Simulator()
        link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=100.0))
        injector = FailureInjector(sim)
        sim.run(until=5.0)
        with pytest.raises(ValueError, match="in the past"):
            injector.schedule_link_corruption(link, time=1.0, corrupt_prob=0.1)
        with pytest.raises(ValueError, match="duration"):
            injector.schedule_link_corruption(
                link, time=6.0, corrupt_prob=0.1, duration=0.0
            )

    def test_artifact_loss_logs_only_effective_drops(self):
        class Store:
            def __init__(self):
                self.calls = []

            def drop_host(self, host):
                self.calls.append(host)
                return 3 if host == "full" else 0

        sim = Simulator()
        injector = FailureInjector(sim)
        store = Store()
        injector.schedule_artifact_loss(store, "empty", time=1.0)
        injector.schedule_artifact_loss(store, "full", time=2.0)
        sim.run()
        assert store.calls == ["empty", "full"]
        # the empty host dropped nothing: no ground-truth event for it
        assert [(e.host, e.kind) for e in injector.log] == [
            ("artifacts:full", "artifact-loss"),
        ]

    def test_journal_corruption_damages_a_memory_journal(self):
        from repro.runtime.checkpoint import CheckpointJournal

        sim = Simulator()
        injector = FailureInjector(sim)
        journal = CheckpointJournal(None)
        journal.append("schedule", application="app")
        journal.append("task_complete", task="t0", outputs=[])
        injector.schedule_journal_corruption(journal, time=1.0, label="app")
        sim.run()
        assert [(e.host, e.kind) for e in injector.log] == [
            ("journal:app", "journal-corrupt"),
        ]
        assert "corrupt:journal:app" in sim._rngs

    def test_journal_corruption_of_an_empty_journal_logs_nothing(self):
        from repro.runtime.checkpoint import CheckpointJournal

        sim = Simulator()
        injector = FailureInjector(sim)
        injector.schedule_journal_corruption(
            CheckpointJournal(None), time=1.0, label="app"
        )
        sim.run()
        assert injector.log == []

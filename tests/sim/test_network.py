"""Unit tests for links, transfers and the network registry."""

import pytest

from repro.sim import LinkSpec, Simulator
from repro.sim.network import LOCAL_COPY_TIME, Link, Network, TransferModel


def test_linkspec_transfer_time_is_latency_plus_serialisation():
    spec = LinkSpec(latency_s=0.1, bandwidth_mbps=2.0)
    assert spec.transfer_time(4.0) == pytest.approx(0.1 + 2.0)


def test_linkspec_validation():
    with pytest.raises(ValueError):
        LinkSpec(latency_s=-0.1)
    with pytest.raises(ValueError):
        LinkSpec(bandwidth_mbps=0.0)
    with pytest.raises(ValueError):
        LinkSpec().transfer_time(-1.0)


def test_single_transfer_matches_analytic_time():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.5, bandwidth_mbps=2.0))
    t = link.transfer(size_mb=4.0)
    sim.run()
    assert t.finished_at == pytest.approx(0.5 + 2.0)


def test_concurrent_transfers_share_bandwidth():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=1.0))
    t1 = link.transfer(size_mb=10.0)
    t2 = link.transfer(size_mb=10.0)
    sim.run()
    # both at rate 0.5 -> 20 s each
    assert t1.finished_at == pytest.approx(20.0)
    assert t2.finished_at == pytest.approx(20.0)


def test_staggered_transfers_contend_only_while_overlapping():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=1.0))
    t1 = link.transfer(size_mb=10.0)
    done = {}

    def start_second():
        t2 = link.transfer(size_mb=10.0)

        def record():
            done["t2"] = t2

        sim.call_at(sim.now, record)

    sim.call_at(5.0, start_second)
    sim.run()
    # t1: 5 MB alone (5 s), then shares -> remaining 5 MB at 0.5 -> +10 s = 15 s
    assert t1.finished_at == pytest.approx(15.0)
    # t2: 5 MB at 0.5 (10 s), then alone: 5 MB at 1.0 (+5 s) -> finishes at t=20
    assert done["t2"].finished_at == pytest.approx(20.0)


def test_zero_size_transfer_costs_latency_only():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.25, bandwidth_mbps=1.0))
    t = link.transfer(size_mb=0.0)
    sim.run()
    assert t.finished_at == pytest.approx(0.25)


def test_link_counters():
    sim = Simulator()
    link = Link(sim, LinkSpec(latency_s=0.0, bandwidth_mbps=10.0))
    link.transfer(size_mb=3.0)
    link.transfer(size_mb=7.0)
    sim.run()
    assert link.transfer_count == 2
    assert link.bytes_carried_mb == pytest.approx(10.0)
    assert link.n_active == 0


def build_network(sim):
    net = Network(
        sim,
        default_lan=LinkSpec(latency_s=0.001, bandwidth_mbps=10.0),
        default_wan=LinkSpec(latency_s=0.05, bandwidth_mbps=1.0),
    )
    net.register_host("a1", "site-a")
    net.register_host("a2", "site-a")
    net.register_host("b1", "site-b")
    return net


def test_network_site_lookup():
    sim = Simulator()
    net = build_network(sim)
    assert net.site_of("a1") == "site-a"
    assert net.site_of("b1") == "site-b"
    with pytest.raises(Exception):
        net.site_of("nope")


def test_duplicate_host_registration_rejected():
    sim = Simulator()
    net = build_network(sim)
    with pytest.raises(Exception):
        net.register_host("a1", "site-c")


def test_estimate_same_host_is_local_copy():
    sim = Simulator()
    net = build_network(sim)
    assert net.transfer_time_estimate("a1", "a1", 100.0) == LOCAL_COPY_TIME


def test_estimate_same_site_uses_lan():
    sim = Simulator()
    net = build_network(sim)
    expected = 0.001 + 5.0 / 10.0
    assert net.transfer_time_estimate("a1", "a2", 5.0) == pytest.approx(expected)


def test_estimate_cross_site_uses_wan():
    sim = Simulator()
    net = build_network(sim)
    expected = 0.05 + 5.0 / 1.0
    assert net.transfer_time_estimate("a1", "b1", 5.0) == pytest.approx(expected)


def test_site_transfer_time_estimate_symmetry():
    sim = Simulator()
    net = build_network(sim)
    ab = net.site_transfer_time_estimate("site-a", "site-b", 2.0)
    ba = net.site_transfer_time_estimate("site-b", "site-a", 2.0)
    assert ab == ba


def test_wan_link_is_lazily_created_and_cached():
    sim = Simulator()
    net = build_network(sim)
    l1 = net.wan_link("site-a", "site-b")
    l2 = net.wan_link("site-b", "site-a")
    assert l1 is l2


def test_explicit_wan_override():
    sim = Simulator()
    net = build_network(sim)
    net.set_wan("site-a", "site-b", LinkSpec(latency_s=0.2, bandwidth_mbps=0.5))
    expected = 0.2 + 1.0 / 0.5
    assert net.transfer_time_estimate("a1", "b1", 1.0) == pytest.approx(expected)


def test_real_transfer_same_host_completes_fast():
    sim = Simulator()
    net = build_network(sim)
    t = net.transfer("a1", "a1", 100.0)
    sim.run()
    assert t.finished_at == pytest.approx(LOCAL_COPY_TIME)


def test_real_transfer_cross_site_uses_wan_link():
    sim = Simulator()
    net = build_network(sim)
    t = net.transfer("a1", "b1", 2.0)
    sim.run()
    assert t.finished_at == pytest.approx(0.05 + 2.0)
    assert net.wan_link("site-a", "site-b").transfer_count == 1


def test_transfer_model_estimates():
    model = TransferModel(
        lan=LinkSpec(latency_s=0.001, bandwidth_mbps=10.0),
        wan=LinkSpec(latency_s=0.05, bandwidth_mbps=1.0),
    )
    assert model.estimate(True, True, 50.0) == LOCAL_COPY_TIME
    assert model.estimate(False, True, 10.0) == pytest.approx(0.001 + 1.0)
    assert model.estimate(False, False, 1.0) == pytest.approx(0.05 + 1.0)


def test_transfer_done_signal_delivers_transfer_object():
    sim = Simulator()
    net = build_network(sim)
    results = []

    def waiter():
        t = net.transfer("a1", "a2", 1.0, label="edge")
        got = yield t.done
        results.append(got.label)

    sim.process(waiter())
    sim.run()
    assert results == ["edge"]

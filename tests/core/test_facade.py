"""Tests for the VDCE facade and deployment config."""

import pytest

from repro import VDCE, DeploymentSpec, HostConfig, SiteConfig
from repro.repository import AccessDomain
from repro.workloads import linear_solver_afg, surveillance_afg


class TestDeploymentSpec:
    def test_explicit_hosts(self):
        spec = DeploymentSpec(
            sites=(
                SiteConfig(name="syr", hosts=(
                    HostConfig("grad1", speed=1.0),
                    HostConfig("grad2", speed=2.0, memory_mb=512),
                )),
                SiteConfig(name="cs", n_hosts=3, speed=1.5),
            ),
            wan_overrides=(("syr", "cs", 0.01, 5.0),),
        )
        topo = spec.build_topology()
        assert topo.host("grad2").spec.memory_mb == 512
        assert topo.network.wan_link("syr", "cs").spec.latency_s == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            DeploymentSpec(sites=())
        with pytest.raises(ValueError):
            DeploymentSpec(sites=(SiteConfig(name="a", n_hosts=1),
                                  SiteConfig(name="a", n_hosts=1)))
        with pytest.raises(ValueError):
            SiteConfig(name="x")
        with pytest.raises(ValueError):
            SiteConfig(name="x", hosts=(HostConfig("h"),), n_hosts=2)
        with pytest.raises(ValueError):
            HostConfig("h", speed=0.0)


class TestVDCEFacade:
    def test_standard_deployment(self):
        env = VDCE.standard(n_sites=3, hosts_per_site=2)
        assert len(env.sites) == 3
        assert len(env.topology.all_hosts) == 6

    def test_exactly_one_of_spec_or_topology(self):
        with pytest.raises(ValueError):
            VDCE()
        env = VDCE.standard()
        with pytest.raises(ValueError):
            VDCE(spec=env.spec, topology=env.topology)

    def test_submit_and_gantt(self):
        env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=1)
        result = env.submit(linear_solver_afg(scale=0.15), k=1)
        assert result.makespan > 0
        chart = env.gantt(result)
        assert "makespan" in chart
        stats = env.stats()
        assert stats["startup_signals"] == 1

    def test_user_management_and_editor(self):
        env = VDCE.standard()
        env.add_user("haluk", "secret", priority=5,
                     access_domain=AccessDomain.CAMPUS)
        session = env.open_editor("haluk", "secret")
        assert session.account.priority == 5
        # account exists on all sites
        for site in env.sites:
            assert "haluk" in env.runtime.repositories[site].users

    def test_monitoring_and_advance(self):
        env = VDCE.standard(n_sites=2, hosts_per_site=2)
        env.start_monitoring()
        env.advance(10.0)
        assert env.sim.now == pytest.approx(10.0)
        assert env.stats()["monitor_reports"] > 0
        with pytest.raises(ValueError):
            env.advance(0.0)

    def test_repository_accessor(self):
        env = VDCE.standard()
        repo = env.repository()
        assert repo.site_name == "site-0"
        assert len(repo.task_perf) > 0

    def test_end_to_end_c3i_with_real_payloads(self):
        env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=2)
        result = env.submit(surveillance_afg(n_sensors=3, scale=0.3), k=1)
        (summary,) = result.outputs["archive"]
        assert summary["tracks"] > 0
        (text,) = result.outputs["display"]
        assert "track 000" in text

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_libraries_lists_all_menus(self, capsys):
        assert main(["libraries"]) == 0
        out = capsys.readouterr().out
        for library in ("matrix:", "c3i:", "generic:", "signal:"):
            assert library in out
        assert "matrix.lu_decomposition" in out
        assert "[parallel]" in out

    def test_experiments_index(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp in ("E1", "E7", "E13"):
            assert exp in out
        assert "bench_fig2_site_scheduler.py" in out

    def test_run_linear_solver(self, capsys):
        assert main(["run", "linear-solver", "--scale", "0.15",
                     "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "makespan=" in out
        assert "slr=" in out
        assert "verify" in out  # placement row + output
        assert "scheduler=vdce" in out  # gantt header

    def test_run_figure1(self, capsys):
        assert main(["run", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "LU_Decomposition" in out

    def test_run_c3i_with_monitoring(self, capsys):
        assert main(["run", "c3i", "--scale", "0.25", "--monitoring"]) == 0
        out = capsys.readouterr().out
        assert "archive" in out

    def test_run_dsp_prints_outputs(self, capsys):
        assert main(["run", "dsp", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "peaks:" in out

    def test_run_random_dag(self, capsys):
        assert main(["run", "random-dag", "--sites", "3", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "30 tasks on 3 sites" in out

    def test_run_unknown_app_exits(self):
        with pytest.raises(SystemExit, match="unknown application"):
            main(["run", "nonsense"])

    def test_monitor_prints_sparklines_and_stats(self, capsys):
        assert main(["monitor", "--duration", "20", "--hosts", "2"]) == 0
        out = capsys.readouterr().out
        assert "monitor_reports" in out
        assert "max=" in out  # sparkline scale labels

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

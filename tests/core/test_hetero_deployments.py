"""Tests: heterogeneous arch/OS deployments and multi-group sites."""

import pytest

from repro import VDCE, DeploymentSpec, HostConfig, SiteConfig
from repro.scheduler import (
    HEFTScheduler,
    MaxMinScheduler,
    MinMinScheduler,
    SiteScheduler,
)
from repro.workloads import bag_of_tasks

from tests.scheduler.conftest import build_federation


class TestArchOSInSpec:
    def test_arch_os_flow_through_to_hosts(self):
        spec = DeploymentSpec(sites=(
            SiteConfig(name="mixed", hosts=(
                HostConfig("sunbox", arch="sparc", os="solaris"),
                HostConfig("pc", speed=2.0, arch="x86", os="linux"),
            )),
        ))
        env = VDCE(spec=spec)
        assert env.topology.host("pc").spec.os == "linux"
        assert env.topology.host("sunbox").spec.arch == "sparc"

    def test_machine_type_preference_respects_spec_os(self):
        from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties

        spec = DeploymentSpec(sites=(
            SiteConfig(name="mixed", hosts=(
                HostConfig("sunbox", speed=1.0, arch="sparc", os="solaris"),
                HostConfig("pc", speed=8.0, arch="x86", os="linux"),
            )),
        ))
        env = VDCE(spec=spec)
        afg = ApplicationFlowGraph("typed")
        afg.add_task(TaskNode(
            id="t", task_type="generic.source", n_out_ports=1,
            properties=TaskProperties(preferred_machine_type="x86 linux")))
        table = SiteScheduler(k=0).schedule(afg, env.runtime.federation_view())
        assert table.get("t").hosts == ("pc",)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostConfig("h", arch="")
        with pytest.raises(ValueError):
            HostConfig("h", os="")


class TestMultiGroupSites:
    def test_group_size_creates_multiple_group_managers(self):
        spec = DeploymentSpec(sites=(
            SiteConfig(name="big", n_hosts=6, group_size=2),
        ))
        env = VDCE(spec=spec)
        groups = [g for g in env.runtime.group_managers if g.startswith("big")]
        assert len(groups) == 3

    def test_monitoring_covers_all_groups(self):
        spec = DeploymentSpec(sites=(
            SiteConfig(name="big", n_hosts=6, group_size=2),
        ))
        env = VDCE(spec=spec)
        env.start_monitoring()
        for host in env.topology.all_hosts:
            host.set_bg_load(1.0)
        env.advance(5.0)
        db = env.repository("big").resources
        assert all(db.get(h.name).load == 1.0
                   for h in env.topology.all_hosts)

    def test_execution_spans_groups(self):
        spec = DeploymentSpec(sites=(
            SiteConfig(name="big", n_hosts=4, group_size=2),
        ))
        env = VDCE(spec=spec)
        result = env.submit(bag_of_tasks(n=8, cost=2.0), k=0,
                            execute_payloads=False)
        assert len(result.hosts_used()) == 4  # both groups participate


class TestBaselineKParameter:
    @pytest.mark.parametrize("factory", [MinMinScheduler, MaxMinScheduler,
                                         HEFTScheduler])
    def test_k_zero_restricts_to_local_site(self, factory):
        _, _, view = build_federation()
        afg = bag_of_tasks(n=4, cost=2.0)
        table = factory(k=0).schedule(afg, view)
        assert table.sites_used() == ["alpha"]

    @pytest.mark.parametrize("factory", [MinMinScheduler, HEFTScheduler])
    def test_k_none_uses_all_sites_for_big_bags(self, factory):
        _, _, view = build_federation()
        afg = bag_of_tasks(n=12, cost=2.0)
        table = factory().schedule(afg, view)
        assert len(table.sites_used()) == 2

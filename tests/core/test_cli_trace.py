"""CLI --trace: the run command writes parseable JSONL + prints a summary."""

from repro.cli import main
from repro.trace import EventKind, read_jsonl, trace_hash


class TestCLITrace:
    def test_run_with_trace_writes_parseable_jsonl(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        assert main(["run", "linear-solver", "--scale", "0.1",
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out

        events = read_jsonl(str(trace_path))
        assert events, "trace file must contain events"
        kinds = {e.kind for e in events}
        assert EventKind.TASK_START in kinds
        assert EventKind.TASK_FINISH in kinds
        assert EventKind.SCHEDULE_DECISION in kinds
        assert EventKind.CHANNEL_SETUP in kinds

        # summary table + hash render on stdout
        assert "trace summary" in out
        assert "phase timings" in out
        assert "execution" in out
        assert f"trace written to {trace_path}" in out
        assert trace_hash(events)[:16] in out

    def test_run_with_trace_and_monitoring(self, tmp_path, capsys):
        trace_path = tmp_path / "mon.jsonl"
        assert main(["run", "linear-solver", "--scale", "0.1", "--monitoring",
                     "--trace", str(trace_path)]) == 0
        events = read_jsonl(str(trace_path))
        kinds = {e.kind for e in events}
        # the run ends before the first echo round (5s period), but the
        # monitor daemons report from t=0
        assert EventKind.MONITOR_REPORT in kinds

    def test_run_without_trace_writes_nothing(self, tmp_path, capsys):
        assert main(["run", "linear-solver", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "trace summary" not in out
        assert list(tmp_path.iterdir()) == []

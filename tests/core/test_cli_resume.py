"""Tests: the ``repro resume`` command end to end."""

import json

from repro import VDCE
from repro.cli import main
from repro.runtime.checkpoint import (
    create_checkpoint_dir,
    expected_output_hashes,
)
from repro.scheduler import SiteScheduler
from repro.workloads import linear_pipeline


def interrupted_run(tmp_path, seed=21, crash_at=6.0):
    env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=seed)
    afg = linear_pipeline(n_stages=4, cost=4.0, edge_mb=1.0)
    expected = expected_output_hashes(afg, env.runtime.registry)
    journal = create_checkpoint_dir(env, str(tmp_path))
    table = SiteScheduler(k=1).schedule(afg, env.runtime.federation_view())
    env.runtime.execute_process(afg, table, journal=journal)
    env.sim.run(until=crash_at)
    env.save_repositories(str(tmp_path / "repos"))
    return expected


class TestResumeCommand:
    def test_resume_verifies_expected_hashes(self, tmp_path, capsys):
        expected = interrupted_run(tmp_path)
        expect_file = tmp_path / "expected_hashes.json"
        expect_file.write_text(json.dumps(expected))
        hashes_file = tmp_path / "hashes.json"

        code = main([
            "resume", str(tmp_path),
            "--expect", str(expect_file),
            "--hashes", str(hashes_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed and completed" in out
        assert "resume equivalence verified" in out
        assert json.loads(hashes_file.read_text()) == expected

    def test_hash_mismatch_exits_nonzero_with_a_diff(self, tmp_path, capsys):
        expected = interrupted_run(tmp_path)
        wrong = dict(expected)
        task = sorted(wrong)[0]
        wrong[task] = "0" * 64
        expect_file = tmp_path / "wrong.json"
        expect_file.write_text(json.dumps(wrong))

        code = main(["resume", str(tmp_path), "--expect", str(expect_file)])
        out = capsys.readouterr().out
        assert code == 1
        assert "resume equivalence FAILED" in out
        assert task in out

    def test_missing_checkpoint_directory_is_a_clean_error(
        self, tmp_path, capsys
    ):
        code = main(["resume", str(tmp_path / "nope")])
        out = capsys.readouterr().out
        assert code == 1
        assert "cannot resume" in out

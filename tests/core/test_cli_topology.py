"""Tests for the topology CLI command and diagram rendering."""

import pytest

from repro import VDCE
from repro.cli import main
from repro.viz import topology_diagram


class TestTopologyDiagram:
    def test_diagram_lists_sites_hosts_and_wan(self):
        env = VDCE.standard(n_sites=3, hosts_per_site=2, seed=1)
        text = topology_diagram(env.topology)
        for site in env.sites:
            assert f"site {site}" in text
        for host in env.topology.all_hosts:
            assert host.name in text
        assert "WAN latency" in text
        assert "(* = site VDCE server)" in text

    def test_diagram_marks_down_hosts(self):
        env = VDCE.standard(n_sites=1, hosts_per_site=2)
        env.topology.host("site-0-h01").fail()
        text = topology_diagram(env.topology)
        assert "[DOWN]" in text
        assert "[up]" in text

    def test_single_site_has_no_wan_matrix(self):
        env = VDCE.standard(n_sites=1, hosts_per_site=2)
        assert "WAN latency" not in topology_diagram(env.topology)

    def test_cli_topology_command(self, capsys):
        assert main(["topology", "--sites", "2", "--hosts", "3"]) == 0
        out = capsys.readouterr().out
        assert "site site-0" in out
        assert "site-1-h02" in out

"""Tests: the selftest command and the webapp index page."""

import pytest

from repro.cli import main


class TestSelftest:
    def test_selftest_passes_end_to_end(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert out.count("ok    ") == 6
        assert "checkpoint journal + resume equivalence" in out
        assert "FAIL" not in out


class TestWebIndex:
    def test_index_page_documents_the_api(self):
        pytest.importorskip("flask")
        from repro.editor.webapp import create_webapp
        from tests.runtime.conftest import build_runtime

        rt = build_runtime()
        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()
        response = client.get("/")
        assert response.status_code == 200
        text = response.get_data(as_text=True)
        assert "VDCE Application Editor" in text
        assert "POST /login" in text
        assert "site: alpha" in text

    def test_missing_required_field_is_400_not_500(self):
        pytest.importorskip("flask")
        from repro.editor.webapp import create_webapp
        from tests.runtime.conftest import build_runtime

        rt = build_runtime()
        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()
        token = client.post("/login", json={"user": "admin",
                                            "password": "vdce-admin"}
                            ).get_json()["token"]
        headers = {"X-VDCE-Token": token}
        client.post("/applications", json={"name": "x"}, headers=headers)
        # edges endpoint without 'src'
        response = client.post("/applications/x/edges", json={"dst": "b"},
                               headers=headers)
        assert response.status_code == 400
        assert "missing required field" in response.get_json()["error"]


class TestSchedulingErrorMapping:
    def test_unschedulable_submit_is_409(self):
        pytest.importorskip("flask")
        from repro.editor.webapp import create_webapp
        from tests.runtime.conftest import build_runtime

        rt = build_runtime()
        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()
        token = client.post("/login", json={"user": "admin",
                                            "password": "vdce-admin"}
                            ).get_json()["token"]
        headers = {"X-VDCE-Token": token}
        client.post("/applications", json={"name": "x"}, headers=headers)
        client.post("/applications/x/tasks",
                    json={"task_type": "generic.source",
                          "preferred_machine": "nowhere"},
                    headers=headers)
        response = client.post("/applications/x/submit", json={"k": 1},
                               headers=headers)
        assert response.status_code == 409
        assert "scheduling failed" in response.get_json()["error"]

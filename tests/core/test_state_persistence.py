"""Tests: whole-deployment durable state (save/load repositories)."""

import pytest

from repro import VDCE
from repro.repository import AccessDomain


class TestDeploymentPersistence:
    def test_save_and_resume_deployment(self, tmp_path):
        env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=1)
        env.add_user("haluk", "secret", priority=7,
                     access_domain=AccessDomain.GLOBAL)
        # accumulate some learned state
        from repro.workloads import linear_pipeline

        env.submit(linear_pipeline(n_stages=3, cost=1.0), k=1,
                   execute_payloads=False)
        paths = env.save_repositories(str(tmp_path))
        assert len(paths) == 2

        # "restart the servers": fresh topology, restored repositories
        repos = VDCE.load_repositories(str(tmp_path))
        env2 = VDCE.standard(n_sites=2, hosts_per_site=2, seed=1,
                             repositories=repos)
        session = env2.open_editor("haluk", "secret")
        assert session.account.priority == 7
        # the calibrations learned before the restart survived
        from repro.repository import snapshot_repository

        persisted = [
            entry
            for repo in env2.runtime.repositories.values()
            for entry in snapshot_repository(repo)["calibrations"]
        ]
        assert persisted, "learned (task, host) ratios must be persisted"
        # and the resumed deployment still runs applications
        result = env2.submit(linear_pipeline(n_stages=2, cost=1.0), k=1,
                             execute_payloads=False)
        assert result.makespan > 0

    def test_load_from_empty_dir_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            VDCE.load_repositories(str(tmp_path))

"""CLI metrics surface: run --metrics, the metrics and analyze commands."""

import json

from repro.cli import main
from repro.metrics.export import load_snapshot, snapshot_hash


class TestRunWithMetrics:
    def test_run_writes_canonical_snapshot(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(["run", "linear-solver", "--scale", "0.1",
                     "--metrics", str(path)]) == 0
        out = capsys.readouterr().out
        snapshot = load_snapshot(str(path))
        assert snapshot["counters"]
        assert "vdce_schedule_decisions_total" in snapshot["counters"]
        assert "sim_events_total" in snapshot["counters"]
        assert f"metrics snapshot written to {path}" in out
        assert snapshot_hash(snapshot)[:16] in out

    def test_trace_and_metrics_together(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        assert main(["run", "linear-solver", "--scale", "0.1",
                     "--trace", str(trace), "--metrics", str(metrics)]) == 0
        assert trace.exists() and metrics.exists()

    def test_monitor_with_metrics(self, tmp_path, capsys):
        path = tmp_path / "mon.json"
        assert main(["monitor", "--duration", "10",
                     "--metrics", str(path)]) == 0
        snapshot = load_snapshot(str(path))
        assert "vdce_host_load" in snapshot["series"]
        assert "vdce_monitor_reports_by_host_total" in snapshot["counters"]

    def test_run_without_metrics_writes_nothing(self, tmp_path, capsys):
        assert main(["run", "linear-solver", "--scale", "0.1"]) == 0
        assert "metrics snapshot" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestMetricsCommand:
    def test_prometheus_from_saved_snapshot(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(["run", "linear-solver", "--scale", "0.1",
                     "--metrics", str(path)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sim_events_total counter" in out
        assert 'le="+Inf"' in out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(["run", "linear-solver", "--scale", "0.1",
                     "--metrics", str(path)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(path), "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out) == load_snapshot(str(path))

    def test_missing_snapshot_is_an_error(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().out

    def test_quick_deployment_when_no_file(self, capsys):
        assert main(["metrics", "--sites", "2", "--hosts", "2"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE vdce_schedule_decisions_total counter" in out
        assert "vdce_host_load" in out


class TestAnalyzeCommand:
    def _write_trace(self, tmp_path, name, scale="0.1"):
        path = tmp_path / name
        assert main(["run", "linear-solver", "--scale", scale,
                     "--trace", str(path)]) == 0
        return path

    def test_single_trace_analysis(self, tmp_path, capsys):
        path = self._write_trace(tmp_path, "t.jsonl")
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "per-host utilization" in out
        assert "schedule->start lag" in out

    def test_identical_traces_diff_exit_zero(self, tmp_path, capsys):
        a = self._write_trace(tmp_path, "a.jsonl")
        b = self._write_trace(tmp_path, "b.jsonl")
        capsys.readouterr()
        assert main(["analyze", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_traces_exit_two(self, tmp_path, capsys):
        a = self._write_trace(tmp_path, "a.jsonl", scale="0.1")
        b = self._write_trace(tmp_path, "b.jsonl", scale="0.2")
        capsys.readouterr()
        assert main(["analyze", str(a), str(b)]) == 2
        out = capsys.readouterr().out
        assert "first divergence" in out

    def test_missing_trace_is_an_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().out

"""Tests: the account access domain caps a submission's federation reach."""

import pytest

from repro.editor import EditorSession
from repro.editor.session import CAMPUS_MAX_K
from repro.repository import AccessDomain

from tests.runtime.conftest import build_runtime


def runtime_with_domains():
    rt = build_runtime(
        site_hosts={
            "alpha": [("a1", 1.0, 256)],
            "beta": [("b1", 8.0, 256)],  # much faster, tempting
        }
    )
    users = rt.repositories["alpha"].users
    users.add_user("local-user", "x", access_domain=AccessDomain.LOCAL)
    users.add_user("campus-user", "x", access_domain=AccessDomain.CAMPUS)
    users.add_user("global-user", "x", access_domain=AccessDomain.GLOBAL)
    return rt


class TestAccessDomain:
    def test_effective_k_per_domain(self):
        rt = runtime_with_domains()
        local = EditorSession(rt, "alpha", "local-user", "x")
        campus = EditorSession(rt, "alpha", "campus-user", "x")
        global_ = EditorSession(rt, "alpha", "global-user", "x")
        assert local.effective_k(5) == 0
        assert campus.effective_k(5) == CAMPUS_MAX_K
        assert campus.effective_k(1) == 1
        assert global_.effective_k(5) == 5
        with pytest.raises(ValueError):
            local.effective_k(-1)

    def test_local_account_cannot_offload(self):
        rt = runtime_with_domains()
        session = EditorSession(rt, "alpha", "local-user", "x")
        builder = session.new_application("job")
        builder.add("generic.source", workload_scale=3.0)
        result = session.submit("job", k=5)
        sites = {r.site for r in result.records.values()}
        assert sites == {"alpha"}  # despite beta being 8x faster

    def test_global_account_reaches_remote_sites(self):
        rt = runtime_with_domains()
        session = EditorSession(rt, "alpha", "global-user", "x")
        builder = session.new_application("job")
        builder.add("generic.source", workload_scale=3.0)
        result = session.submit("job", k=5)
        sites = {r.site for r in result.records.values()}
        assert sites == {"beta"}  # free to chase the fast host

"""Tests for the Flask web editor (paper §2's web pipeline over HTTP)."""

import pytest

flask = pytest.importorskip("flask")

from repro.editor.webapp import create_webapp

from tests.runtime.conftest import build_runtime


@pytest.fixture
def client():
    rt = build_runtime()
    app = create_webapp(rt, site="alpha")
    app.config["TESTING"] = True
    return app.test_client()


def login(client, user="admin", password="vdce-admin"):
    response = client.post("/login", json={"user": user, "password": password})
    assert response.status_code == 200
    return {"X-VDCE-Token": response.get_json()["token"]}


class TestAuth:
    def test_login_success_returns_account_info(self, client):
        response = client.post("/login", json={"user": "admin",
                                               "password": "vdce-admin"})
        body = response.get_json()
        assert response.status_code == 200
        assert body["user"] == "admin"
        assert body["site"] == "alpha"
        assert body["access_domain"] == "global"

    def test_bad_password_is_401(self, client):
        response = client.post("/login", json={"user": "admin", "password": "x"})
        assert response.status_code == 401

    def test_missing_token_is_401(self, client):
        assert client.get("/libraries").status_code == 401
        assert client.get("/libraries",
                          headers={"X-VDCE-Token": "bogus"}).status_code == 401


class TestEditorFlow:
    def test_libraries_menu(self, client):
        headers = login(client)
        body = client.get("/libraries", headers=headers).get_json()
        assert set(body) == {"c3i", "generic", "matrix", "signal"}

    def test_full_build_and_submit_flow(self, client):
        headers = login(client)
        assert client.post("/applications", json={"name": "solver"},
                           headers=headers).status_code == 201

        def add(task_type, scale=0.2, **kw):
            response = client.post(
                "/applications/solver/tasks",
                json={"task_type": task_type, "workload_scale": scale, **kw},
                headers=headers,
            )
            assert response.status_code == 201
            return response.get_json()["task_id"]

        gen = add("matrix.generate_system")
        lu = add("matrix.lu_decomposition")
        solve = add("matrix.triangular_solve")
        for src, dst, sp, dp in [(gen, lu, 0, 0), (gen, solve, 1, 1),
                                 (lu, solve, 0, 0)]:
            response = client.post(
                "/applications/solver/edges",
                json={"src": src, "dst": dst, "src_port": sp, "dst_port": dp},
                headers=headers,
            )
            assert response.status_code == 201

        # inspect the canvas
        afg_json = client.get("/applications/solver", headers=headers).get_json()
        assert len(afg_json["tasks"]) == 3
        assert len(afg_json["edges"]) == 3

        # validate then submit
        response = client.post("/applications/solver/validate", headers=headers)
        assert response.status_code == 200
        assert response.get_json()["problems"] == []

        response = client.post("/applications/solver/submit", json={"k": 1},
                               headers=headers)
        assert response.status_code == 200
        body = response.get_json()
        assert body["makespan_s"] > 0
        assert len(body["tasks"]) == 3
        assert all(t["attempts"] == 1 for t in body["tasks"].values())

    def test_validation_reports_problems(self, client):
        headers = login(client)
        client.post("/applications", json={"name": "bad"}, headers=headers)
        client.post("/applications/bad/tasks",
                    json={"task_type": "matrix.lu_decomposition"},
                    headers=headers)
        response = client.post("/applications/bad/validate", headers=headers)
        assert response.status_code == 422
        assert response.get_json()["problems"]

    def test_patch_task_properties(self, client):
        headers = login(client)
        client.post("/applications", json={"name": "app"}, headers=headers)
        response = client.post("/applications/app/tasks",
                               json={"task_type": "matrix.lu_decomposition"},
                               headers=headers)
        task_id = response.get_json()["task_id"]
        response = client.patch(
            f"/applications/app/tasks/{task_id}",
            json={"mode": "parallel", "n_nodes": 2},
            headers=headers,
        )
        assert response.status_code == 200
        afg_json = client.get("/applications/app", headers=headers).get_json()
        (task,) = afg_json["tasks"]
        assert task["properties"]["mode"] == "parallel"
        assert task["properties"]["n_nodes"] == 2

    def test_bind_file_endpoint(self, client):
        headers = login(client)
        client.post("/applications", json={"name": "filey"}, headers=headers)
        response = client.post("/applications/filey/tasks",
                               json={"task_type": "matrix.lu_decomposition"},
                               headers=headers)
        task_id = response.get_json()["task_id"]
        response = client.post(
            "/applications/filey/files",
            json={"task": task_id, "port": 0,
                  "path": "/u/users/VDCE/user_k/matrix_A.dat",
                  "size_mb": 124.88},
            headers=headers,
        )
        assert response.status_code == 201
        response = client.post("/applications/filey/validate", headers=headers)
        assert response.status_code == 200

    def test_builder_errors_are_400(self, client):
        headers = login(client)
        client.post("/applications", json={"name": "app"}, headers=headers)
        response = client.post("/applications/app/tasks",
                               json={"task_type": "nope.missing"},
                               headers=headers)
        assert response.status_code == 400
        assert "unknown task type" in response.get_json()["error"]

    def test_unknown_application_is_400(self, client):
        headers = login(client)
        response = client.get("/applications/ghost", headers=headers)
        assert response.status_code == 400

    def test_list_applications(self, client):
        headers = login(client)
        client.post("/applications", json={"name": "a"}, headers=headers)
        client.post("/applications", json={"name": "b"}, headers=headers)
        body = client.get("/applications", headers=headers).get_json()
        assert body["applications"] == ["a", "b"]


class TestMetricsRoute:
    def test_metrics_route_serves_prometheus_text(self):
        from repro.metrics.registry import MetricsRegistry
        from repro.runtime import RuntimeConfig, VDCERuntime
        from repro.sim import TopologyBuilder

        builder = TopologyBuilder(seed=0).wan_defaults(0.02, 2.0)
        builder.site("alpha", hosts=[("a1", 1.0, 256), ("a2", 2.0, 256)])
        topo = builder.build()
        rt = VDCERuntime(topo, config=RuntimeConfig(),
                         metrics=MetricsRegistry())
        rt.start_monitoring()
        rt.sim.run(until=10.0)

        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()

        # no auth required: /metrics is a scrape target
        response = client.get("/metrics")
        assert response.status_code == 200
        assert response.content_type.startswith("text/plain")
        body = response.get_data(as_text=True)
        assert "# TYPE sim_events_total counter" in body
        assert "vdce_monitor_reports_by_host_total" in body

    def test_metrics_route_with_disabled_registry_is_empty(self, client):
        response = client.get("/metrics")
        assert response.status_code == 200
        assert response.get_data(as_text=True) == ""


class TestAdmissionIntegration:
    def make_client(self, rt=None, **policy_kwargs):
        from repro.runtime.admission import AdmissionPolicy, AdmissionQueue

        rt = rt or build_runtime()
        queue = AdmissionQueue(
            rt, max_concurrent=2, site="alpha",
            policy=AdmissionPolicy(**policy_kwargs),
        )
        app = create_webapp(rt, site="alpha", admission=queue)
        app.config["TESTING"] = True
        return app.test_client(), rt, queue

    def import_chain(self, client, headers, name="hose"):
        from repro.afg.serialize import afg_to_dict

        from tests.runtime.conftest import chain_afg

        response = client.post(
            "/applications/import",
            json=afg_to_dict(chain_afg(n=2, name=name)),
            headers=headers,
        )
        assert response.status_code == 201

    def test_submit_reports_queue_occupancy(self):
        client, rt, queue = self.make_client(max_queued=4)
        headers = login(client)
        self.import_chain(client, headers)
        response = client.post("/applications/hose/submit", json={"k": 1},
                               headers=headers)
        assert response.status_code == 200
        body = response.get_json()
        assert body["makespan_s"] > 0
        assert body["admission"] == {"queued": 0, "running": 0}
        assert queue.admitted_order == ["hose"]

    def test_brownout_rejection_is_429(self):
        from repro.runtime.overload import OverloadPolicy

        client, rt, queue = self.make_client(
            rt=build_runtime(overload=OverloadPolicy())
        )
        rt.brownout.update("alpha", "g0", 1.0)  # critical: refuse work
        headers = login(client)
        self.import_chain(client, headers)
        response = client.post("/applications/hose/submit", json={"k": 1},
                               headers=headers)
        assert response.status_code == 429
        assert "brownout" in response.get_json()["error"]

    def test_submission_under_deleted_account_is_403(self):
        # the account disappears between login and submit: admission
        # looks the user up again and refuses with the typed error
        client, rt, queue = self.make_client(max_queued=4)
        headers = login(client)
        self.import_chain(client, headers)
        rt.repositories["alpha"].users.remove("admin")
        response = client.post("/applications/hose/submit", json={"k": 1},
                               headers=headers)
        assert response.status_code == 403
        assert "admin" in response.get_json()["error"]

"""Tests for the programmatic Application Editor."""

import pytest

from repro.afg import AFGValidationError, ComputationMode
from repro.editor import AFGBuilder, BuilderError, EditorSession, SessionError
from repro.repository import AuthenticationError

from tests.runtime.conftest import build_runtime


class TestAFGBuilder:
    def test_add_autogenerates_ids_and_ports(self):
        b = AFGBuilder("app")
        id1 = b.add("matrix.generate_system")
        id2 = b.add("matrix.lu_decomposition")
        assert id1 != id2
        node = b.preview().task(id2)
        assert node.n_in_ports == 1
        assert node.n_out_ports == 1

    def test_unknown_task_type_rejected(self):
        with pytest.raises(BuilderError, match="unknown task type"):
            AFGBuilder("app").add("nope.missing")

    def test_connect_with_default_size(self):
        b = AFGBuilder("app")
        gen = b.add("matrix.generate_system", workload_scale=2.0)
        lu = b.add("matrix.lu_decomposition")
        b.connect(gen, lu, src_port=0)
        edge = b.preview().edges[0]
        # generate_system comm_size 4.0 MB x scale 2.0
        assert edge.size_mb == pytest.approx(8.0)

    def test_connect_explicit_size_and_errors(self):
        b = AFGBuilder("app")
        gen = b.add("matrix.generate_system")
        lu = b.add("matrix.lu_decomposition")
        b.connect(gen, lu, src_port=1, size_mb=3.0)
        assert b.preview().edges[0].size_mb == 3.0
        with pytest.raises(BuilderError):
            b.connect("ghost", lu)
        with pytest.raises(BuilderError):
            b.connect(gen, lu, src_port=9)

    def test_build_synthesises_dataflow_bindings(self):
        b = AFGBuilder("app")
        gen = b.add("matrix.generate_system")
        lu = b.add("matrix.lu_decomposition")
        b.connect(gen, lu, src_port=0)
        # lu has 1 in-port fed by edge; triangular solve left out
        afg = b.build()
        binding = afg.task(lu).properties.inputs[0]
        assert binding.is_dataflow

    def test_bind_file(self):
        b = AFGBuilder("app")
        lu = b.add("matrix.lu_decomposition")
        b.bind_file(lu, 0, "/data/matrix_A.dat", 124.88)
        afg = b.build()
        binding = afg.task(lu).properties.inputs[0]
        assert not binding.is_dataflow
        assert binding.file.size_mb == pytest.approx(124.88)

    def test_bind_file_errors(self):
        b = AFGBuilder("app")
        gen = b.add("matrix.generate_system")
        lu = b.add("matrix.lu_decomposition")
        with pytest.raises(BuilderError):
            b.bind_file(lu, 5, "/x", 1.0)
        with pytest.raises(BuilderError):
            b.bind_file("ghost", 0, "/x", 1.0)
        b.connect(gen, lu, src_port=0)
        with pytest.raises(BuilderError, match="already fed"):
            b.bind_file(lu, 0, "/x", 1.0)

    def test_build_validates_unbound_ports(self):
        b = AFGBuilder("app")
        b.add("matrix.lu_decomposition")  # input port left dangling
        with pytest.raises(AFGValidationError):
            b.build()
        # but build(validate=False) returns the raw graph
        afg = b.build(validate=False)
        assert len(afg) == 1

    def test_set_properties(self):
        b = AFGBuilder("app")
        lu = b.add("matrix.lu_decomposition")
        b.set_properties(lu, mode="parallel", n_nodes=4)
        node = b.preview().task(lu)
        assert node.properties.mode is ComputationMode.PARALLEL
        assert node.properties.n_nodes == 4
        with pytest.raises(BuilderError):
            b.set_properties(lu, n_nodes=0)
        with pytest.raises(BuilderError):
            b.set_properties("ghost", n_nodes=2)

    def test_parallel_on_nonparallel_task_caught_at_build(self):
        b = AFGBuilder("app")
        src = b.add("generic.source", mode="parallel", n_nodes=2)
        with pytest.raises(AFGValidationError, match="no parallel"):
            b.build()

    def test_task_ids_listing(self):
        b = AFGBuilder("app")
        a = b.add("generic.source", id="mysrc")
        assert b.task_ids == ["mysrc"]
        with pytest.raises(BuilderError):
            b.add("generic.source", id="mysrc")


class TestEditorSession:
    def test_authentication_required(self):
        rt = build_runtime()
        with pytest.raises(AuthenticationError):
            EditorSession(rt, "alpha", "admin", "wrong")
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        assert session.account.user_name == "admin"

    def test_unknown_site_rejected(self):
        rt = build_runtime()
        with pytest.raises(SessionError):
            EditorSession(rt, "mars", "admin", "vdce-admin")

    def test_libraries_menu(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        menu = session.libraries()
        assert set(menu) == {"c3i", "generic", "matrix", "signal"}
        lu = [e for e in menu["matrix"] if e["name"] == "matrix.lu_decomposition"]
        assert lu and lu[0]["parallelizable"]

    def test_application_lifecycle_and_submit(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        builder = session.new_application("solver")
        gen = builder.add("matrix.generate_system", workload_scale=0.2)
        lu = builder.add("matrix.lu_decomposition", workload_scale=0.2)
        solve = builder.add("matrix.triangular_solve", workload_scale=0.2)
        builder.connect(gen, lu, src_port=0)
        builder.connect(gen, solve, src_port=1, dst_port=1)
        builder.connect(lu, solve, dst_port=0)
        result = session.submit("solver", k=1)
        assert result.makespan > 0
        assert session.result("solver") is result
        assert session.applications() == ["solver"]

    def test_duplicate_application_rejected(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        session.new_application("x")
        with pytest.raises(SessionError):
            session.new_application("x")
        with pytest.raises(SessionError):
            session.application("ghost")
        with pytest.raises(SessionError):
            session.result("ghost")

    def test_closed_session_refuses_work(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        session.close()
        assert not session.is_open
        with pytest.raises(SessionError, match="closed"):
            session.new_application("x")
        with pytest.raises(SessionError):
            session.libraries()

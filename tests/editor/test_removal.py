"""Tests: task/edge removal through graph, builder and web layers."""

import pytest

from repro.afg import ApplicationFlowGraph, TaskNode, validate_afg
from repro.editor import AFGBuilder, BuilderError

from tests.runtime.conftest import build_runtime


def small_graph():
    afg = ApplicationFlowGraph("g")
    afg.add_task(TaskNode(id="a", task_type="generic.source", n_out_ports=1))
    afg.add_task(TaskNode(id="b", task_type="generic.compute",
                          n_in_ports=1, n_out_ports=1))
    afg.add_task(TaskNode(id="c", task_type="generic.sink", n_in_ports=1))
    afg.connect("a", "b", size_mb=1.0)
    afg.connect("b", "c", size_mb=2.0)
    return afg


class TestGraphRemoval:
    def test_remove_task_drops_incident_edges(self):
        afg = small_graph()
        afg.remove_task("b")
        assert "b" not in afg
        assert afg.edges == []
        assert afg.children("a") == []
        assert afg.parents("c") == []
        with pytest.raises(KeyError):
            afg.remove_task("b")

    def test_removed_port_can_be_rewired(self):
        afg = small_graph()
        afg.remove_task("b")
        afg.add_task(TaskNode(id="b2", task_type="generic.compute",
                              n_in_ports=1, n_out_ports=1))
        afg.connect("a", "b2")
        afg.connect("b2", "c")
        assert validate_afg(afg) == []

    def test_disconnect_single_edge(self):
        afg = small_graph()
        edge = afg.disconnect("a", "b")
        assert edge.size_mb == 1.0
        assert afg.children("a") == []
        assert len(afg.edges) == 1
        with pytest.raises(KeyError):
            afg.disconnect("a", "b")

    def test_disconnect_frees_the_input_port(self):
        afg = small_graph()
        afg.disconnect("a", "b")
        afg.add_task(TaskNode(id="a2", task_type="generic.source",
                              n_out_ports=1))
        afg.connect("a2", "b")  # port 0 is free again
        assert afg.parents("b") == ["a2"]

    def test_disconnect_unknown_endpoints(self):
        afg = small_graph()
        with pytest.raises(KeyError):
            afg.disconnect("zz", "b")
        with pytest.raises(KeyError):
            afg.disconnect("a", "b", src_port=5)


class TestBuilderRemoval:
    def test_remove_and_rebuild(self):
        b = AFGBuilder("app")
        src = b.add("generic.source")
        mid = b.add("generic.compute")
        snk = b.add("generic.sink")
        b.connect(src, mid)
        b.connect(mid, snk)
        b.remove(mid)
        assert mid not in b.task_ids
        # re-wire around the removed node
        mid2 = b.add("generic.compute")
        b.connect(src, mid2)
        b.connect(mid2, snk)
        afg = b.build()
        assert len(afg) == 3

    def test_remove_drops_file_bindings(self):
        b = AFGBuilder("app")
        lu = b.add("matrix.lu_decomposition")
        b.bind_file(lu, 0, "/a.dat", 1.0)
        b.remove(lu)
        lu2 = b.add("matrix.lu_decomposition", id=lu)
        b.bind_file(lu2, 0, "/b.dat", 2.0)  # no "already fed" conflict
        afg = b.build()
        assert afg.task(lu2).properties.inputs[0].file.path == "/b.dat"

    def test_errors(self):
        b = AFGBuilder("app")
        with pytest.raises(BuilderError):
            b.remove("ghost")
        src = b.add("generic.source")
        snk = b.add("generic.sink")
        with pytest.raises(BuilderError):
            b.disconnect(src, snk)


class TestWebRemoval:
    @pytest.fixture
    def client_headers(self):
        pytest.importorskip("flask")
        from repro.editor.webapp import create_webapp

        rt = build_runtime()
        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()
        token = client.post("/login", json={"user": "admin",
                                            "password": "vdce-admin"}
                            ).get_json()["token"]
        return client, {"X-VDCE-Token": token}

    def test_delete_task_and_edge(self, client_headers):
        client, headers = client_headers
        client.post("/applications", json={"name": "app"}, headers=headers)
        src = client.post("/applications/app/tasks",
                          json={"task_type": "generic.source"},
                          headers=headers).get_json()["task_id"]
        snk = client.post("/applications/app/tasks",
                          json={"task_type": "generic.sink"},
                          headers=headers).get_json()["task_id"]
        client.post("/applications/app/edges",
                    json={"src": src, "dst": snk}, headers=headers)

        response = client.delete("/applications/app/edges",
                                 json={"src": src, "dst": snk},
                                 headers=headers)
        assert response.status_code == 200
        response = client.delete(f"/applications/app/tasks/{src}",
                                 headers=headers)
        assert response.status_code == 200
        afg_json = client.get("/applications/app", headers=headers).get_json()
        assert len(afg_json["tasks"]) == 1
        assert afg_json["edges"] == []

    def test_delete_unknown_task_is_400(self, client_headers):
        client, headers = client_headers
        client.post("/applications", json={"name": "app"}, headers=headers)
        response = client.delete("/applications/app/tasks/ghost",
                                 headers=headers)
        assert response.status_code == 400

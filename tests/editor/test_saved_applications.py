"""Tests: the saved application JSONs load, validate and run."""

import os

import pytest

from repro.editor import EditorSession

from tests.runtime.conftest import build_runtime

APP_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                       "examples", "applications")


def load(name):
    with open(os.path.join(APP_DIR, name), encoding="utf-8") as fh:
        return fh.read()


class TestSavedApplications:
    def session(self):
        rt = build_runtime()
        return EditorSession(rt, "alpha", "admin", "vdce-admin")

    def test_all_saved_files_import_cleanly(self):
        session = self.session()
        files = [f for f in os.listdir(APP_DIR) if f.endswith(".json")]
        assert len(files) >= 3
        for filename in files:
            afg = session.import_application(load(filename))
            assert len(afg) > 0

    def test_saved_solver_runs_and_is_correct(self):
        session = self.session()
        afg = session.import_application(load("linear_solver.json"))
        result = session.submit(afg.name, k=1)
        (residual,) = result.outputs["verify"]
        assert residual < 1e-8
        lu = result.records["lu"]
        assert len(lu.hosts) == 2  # parallel LU preserved through JSON

    def test_saved_surveillance_runs(self):
        session = self.session()
        afg = session.import_application(load("surveillance.json"))
        result = session.submit(afg.name, k=1)
        (summary,) = result.outputs["archive"]
        assert summary["tracks"] > 0

    def test_saved_wavefront_runs_shape_only(self):
        session = self.session()
        afg = session.import_application(load("wavefront_6x6.json"))
        result = session.submit(afg.name, k=1, execute_payloads=False)
        assert len(result.records) == 36

    def test_files_match_generators(self):
        """The committed JSONs are exactly what the generators produce."""
        from repro.afg import afg_to_json
        from repro.workloads import (
            linear_solver_afg,
            surveillance_afg,
            wavefront,
        )

        expected = {
            "linear_solver.json": linear_solver_afg(scale=0.25,
                                                    parallel_lu_nodes=2),
            "surveillance.json": surveillance_afg(n_sensors=3, scale=0.5),
            "wavefront_6x6.json": wavefront(n=6, cost=1.5, edge_mb=0.5),
        }
        for filename, afg in expected.items():
            assert load(filename) == afg_to_json(afg, indent=1)

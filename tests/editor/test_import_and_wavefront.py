"""Tests: application import (session + web) and the wavefront workload."""

import pytest

from repro.afg import AFGValidationError, afg_to_dict, afg_to_json, validate_afg
from repro.editor import EditorSession, SessionError
from repro.scheduler import SiteScheduler
from repro.workloads import surveillance_afg, wavefront

from tests.runtime.conftest import build_runtime


class TestWavefront:
    def test_structure(self):
        afg = wavefront(n=4, cost=1.0)
        assert len(afg) == 16
        assert afg.entry_tasks() == ["c00_00"]
        assert afg.exit_tasks() == ["c03_03"]
        assert validate_afg(afg) == []
        # corner cells have one parent, interior cells two
        assert afg.task("c00_01").n_in_ports == 1
        assert afg.task("c01_01").n_in_ports == 2

    def test_frontier_parallelism_is_visible_in_execution(self):
        """The anti-diagonal widens: peak concurrency ~ n on n hosts."""
        from repro.metrics import concurrency_profile

        rt = build_runtime(
            site_hosts={"alpha": [(f"h{i}", 1.0, 256) for i in range(4)]}
        )
        afg = wavefront(n=4, cost=1.0, edge_mb=0.0)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )
        peak = max(c for _, c in concurrency_profile(result))
        assert peak >= 3  # near the main anti-diagonal

    def test_validation(self):
        with pytest.raises(ValueError):
            wavefront(n=0)

    def test_executes_end_to_end(self):
        rt = build_runtime()
        afg = wavefront(n=3, cost=0.5)
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )
        assert len(result.records) == 9


class TestImport:
    def test_session_import_dict_and_submit(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        data = afg_to_dict(surveillance_afg(n_sensors=2, scale=0.3))
        afg = session.import_application(data)
        assert afg.name == "c3i-surveillance-2"
        result = session.submit("c3i-surveillance-2", k=1)
        assert "archive" in result.outputs

    def test_session_import_json_string(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        afg = session.import_application(
            afg_to_json(wavefront(n=2, cost=1.0))
        )
        assert session.imported("wavefront-2x2") is afg

    def test_duplicate_import_rejected(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        data = afg_to_dict(wavefront(n=2))
        session.import_application(data)
        with pytest.raises(SessionError, match="already imported"):
            session.import_application(data)

    def test_import_validates_against_registry(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        data = afg_to_dict(wavefront(n=2))
        data["tasks"][0]["task_type"] = "nope.missing"
        with pytest.raises(AFGValidationError):
            session.import_application(data)

    def test_unknown_imported_name(self):
        rt = build_runtime()
        session = EditorSession(rt, "alpha", "admin", "vdce-admin")
        with pytest.raises(SessionError):
            session.imported("ghost")

    def test_web_import_endpoint(self):
        pytest.importorskip("flask")
        from repro.editor.webapp import create_webapp

        rt = build_runtime()
        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()
        token = client.post("/login", json={"user": "admin",
                                            "password": "vdce-admin"}
                            ).get_json()["token"]
        headers = {"X-VDCE-Token": token}
        data = afg_to_dict(wavefront(n=2, cost=1.0))
        response = client.post("/applications/import", json=data,
                               headers=headers)
        assert response.status_code == 201
        assert response.get_json() == {"application": "wavefront-2x2",
                                       "tasks": 4}
        # submitting the imported application works through the API
        response = client.post("/applications/wavefront-2x2/submit",
                               json={"k": 1, "execute_payloads": False},
                               headers=headers)
        assert response.status_code == 200
        assert len(response.get_json()["tasks"]) == 4

    def test_web_import_invalid_is_422(self):
        pytest.importorskip("flask")
        from repro.editor.webapp import create_webapp

        rt = build_runtime()
        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()
        token = client.post("/login", json={"user": "admin",
                                            "password": "vdce-admin"}
                            ).get_json()["token"]
        headers = {"X-VDCE-Token": token}
        data = afg_to_dict(wavefront(n=2))
        data["tasks"][0]["task_type"] = "nope.missing"
        response = client.post("/applications/import", json=data,
                               headers=headers)
        assert response.status_code == 422

"""Tests for level computation, validation and serialisation."""

import pytest

from repro.afg import (
    AFGValidationError,
    ApplicationFlowGraph,
    ComputationMode,
    FileSpec,
    InputBinding,
    TaskNode,
    TaskProperties,
    afg_from_dict,
    afg_from_json,
    afg_to_dict,
    afg_to_json,
    compute_levels,
    priority_order,
    validate_afg,
)
from repro.tasklib import default_registry


def node(id, n_in=0, n_out=1, task_type="generic.compute", **props):
    return TaskNode(
        id=id,
        task_type=task_type,
        n_in_ports=n_in,
        n_out_ports=n_out,
        properties=TaskProperties(**props) if props else TaskProperties(),
    )


def chain(costs):
    """t0 -> t1 -> ... with given per-node costs; returns (afg, cost_fn)."""
    afg = ApplicationFlowGraph("chain")
    ids = [f"t{i}" for i in range(len(costs))]
    for i, tid in enumerate(ids):
        afg.add_task(node(tid, n_in=(1 if i else 0), n_out=1))
    for a, b in zip(ids, ids[1:]):
        afg.connect(a, b)
    table = dict(zip(ids, costs))
    return afg, lambda t: table[t]


class TestLevels:
    def test_chain_levels_are_suffix_sums(self):
        afg, cost = chain([3.0, 2.0, 5.0])
        levels = compute_levels(afg, cost)
        assert levels == {"t0": 10.0, "t1": 7.0, "t2": 5.0}

    def test_exit_level_is_own_cost(self):
        afg, cost = chain([4.0])
        assert compute_levels(afg, cost) == {"t0": 4.0}

    def test_diamond_takes_largest_path(self):
        afg = ApplicationFlowGraph("d")
        afg.add_task(node("a", 0, 2))
        afg.add_task(node("b", 1, 1))
        afg.add_task(node("c", 1, 1))
        afg.add_task(node("d", 2, 0))
        afg.connect("a", "b", src_port=0)
        afg.connect("a", "c", src_port=1)
        afg.connect("b", "d", dst_port=0)
        afg.connect("c", "d", dst_port=1)
        costs = {"a": 1.0, "b": 10.0, "c": 2.0, "d": 1.0}
        levels = compute_levels(afg, costs.__getitem__)
        # a's level goes through b (the heavier branch)
        assert levels["a"] == pytest.approx(12.0)
        assert levels["b"] == pytest.approx(11.0)
        assert levels["c"] == pytest.approx(3.0)
        assert levels["d"] == pytest.approx(1.0)

    def test_priority_order_descending_with_id_tiebreak(self):
        afg = ApplicationFlowGraph("p")
        for tid in ("x", "m", "a"):
            afg.add_task(node(tid, 0, 0))
        order = priority_order(afg, lambda t: 1.0)
        assert order == ["a", "m", "x"]  # equal levels -> id order

    def test_priority_order_respects_levels(self):
        afg, cost = chain([1.0, 1.0, 1.0])
        assert priority_order(afg, cost) == ["t0", "t1", "t2"]

    def test_negative_cost_rejected(self):
        afg, _ = chain([1.0])
        with pytest.raises(ValueError, match="negative"):
            compute_levels(afg, lambda t: -1.0)


class TestValidate:
    def test_valid_graph_passes(self):
        afg = ApplicationFlowGraph("ok")
        afg.add_task(node("src", 0, 1, task_type="generic.source"))
        afg.add_task(node("snk", 1, 0, task_type="generic.sink"))
        afg.connect("src", "snk")
        assert validate_afg(afg) == []

    def test_empty_graph_fails(self):
        with pytest.raises(AFGValidationError, match="no tasks"):
            validate_afg(ApplicationFlowGraph("empty"))

    def test_cycle_reported(self):
        afg = ApplicationFlowGraph("cyc")
        afg.add_task(node("a", 1, 1))
        afg.add_task(node("b", 1, 1))
        afg.connect("a", "b")
        afg.connect("b", "a")
        problems = validate_afg(afg, collect=True)
        assert any("cycle" in p for p in problems)

    def test_unconnected_unbound_input_port(self):
        afg = ApplicationFlowGraph("g")
        afg.add_task(node("lonely", 1, 0))
        problems = validate_afg(afg, collect=True)
        assert any("unconnected" in p for p in problems)

    def test_file_bound_port_needs_no_edge(self):
        afg = ApplicationFlowGraph("g")
        afg.add_task(
            TaskNode(
                id="t",
                task_type="generic.sink",
                n_in_ports=1,
                properties=TaskProperties(
                    inputs=(InputBinding(0, FileSpec("/in.dat", 1.0)),)
                ),
            )
        )
        assert validate_afg(afg) == []

    def test_dataflow_bound_port_without_edge_fails(self):
        afg = ApplicationFlowGraph("g")
        afg.add_task(
            TaskNode(
                id="t",
                task_type="generic.sink",
                n_in_ports=1,
                properties=TaskProperties(inputs=(InputBinding(0),)),
            )
        )
        problems = validate_afg(afg, collect=True)
        assert any("dataflow" in p for p in problems)

    def test_edge_into_file_bound_port_conflicts(self):
        afg = ApplicationFlowGraph("g")
        afg.add_task(node("src", 0, 1))
        afg.add_task(
            TaskNode(
                id="t",
                task_type="generic.sink",
                n_in_ports=1,
                properties=TaskProperties(
                    inputs=(InputBinding(0, FileSpec("/in.dat", 1.0)),)
                ),
            )
        )
        afg.connect("src", "t")
        problems = validate_afg(afg, collect=True)
        assert any("both" in p for p in problems)

    def test_registry_unknown_type(self):
        afg = ApplicationFlowGraph("g")
        afg.add_task(node("t", 0, 1, task_type="nope.missing"))
        problems = validate_afg(afg, registry=default_registry(), collect=True)
        assert any("unknown task type" in p for p in problems)

    def test_registry_port_mismatch(self):
        afg = ApplicationFlowGraph("g")
        # generic.compute is 1-in 1-out; declare 0-in
        afg.add_task(node("t", 0, 1, task_type="generic.compute"))
        problems = validate_afg(afg, registry=default_registry(), collect=True)
        assert any("takes 1 inputs" in p for p in problems)

    def test_registry_parallel_support(self):
        afg = ApplicationFlowGraph("g")
        afg.add_task(
            TaskNode(
                id="t",
                task_type="generic.source",
                n_in_ports=0,
                n_out_ports=1,
                properties=TaskProperties(
                    mode=ComputationMode.PARALLEL, n_nodes=2
                ),
            )
        )
        problems = validate_afg(afg, registry=default_registry(), collect=True)
        assert any("no parallel" in p for p in problems)


class TestSerialize:
    def build_rich_graph(self):
        afg = ApplicationFlowGraph("rich")
        afg.add_task(
            TaskNode(
                id="lu",
                task_type="matrix.lu_decomposition",
                n_in_ports=1,
                n_out_ports=1,
                properties=TaskProperties(
                    mode=ComputationMode.PARALLEL,
                    n_nodes=2,
                    preferred_machine_type="SUN solaris",
                    inputs=(InputBinding(0, FileSpec("/matrix_A.dat", 124.88)),),
                    outputs=(FileSpec("/lu.dat", 60.0),),
                    workload_scale=2.0,
                    memory_mb=64,
                ),
            )
        )
        afg.add_task(
            TaskNode(
                id="mm",
                task_type="matrix.matrix_multiply",
                n_in_ports=2,
                n_out_ports=1,
                properties=TaskProperties(
                    preferred_machine="hunding.top.cis.syr.edu",
                    inputs=(InputBinding(0), InputBinding(1, FileSpec("/b.dat", 2.0))),
                ),
            )
        )
        afg.connect("lu", "mm", src_port=0, dst_port=0, size_mb=60.0)
        return afg

    def test_roundtrip_dict(self):
        original = self.build_rich_graph()
        restored = afg_from_dict(afg_to_dict(original))
        assert afg_to_dict(restored) == afg_to_dict(original)
        assert restored.task("lu").properties.preferred_machine_type == "SUN solaris"
        assert restored.task("lu").properties.n_nodes == 2
        assert restored.edges[0].size_mb == pytest.approx(60.0)

    def test_roundtrip_json(self):
        original = self.build_rich_graph()
        restored = afg_from_json(afg_to_json(original))
        assert afg_to_dict(restored) == afg_to_dict(original)

    def test_json_is_stable(self):
        g = self.build_rich_graph()
        assert afg_to_json(g) == afg_to_json(g)

    def test_unknown_format_version_rejected(self):
        data = afg_to_dict(self.build_rich_graph())
        data["format"] = 99
        with pytest.raises(ValueError, match="format"):
            afg_from_dict(data)

    def test_restored_graph_validates(self):
        original = self.build_rich_graph()
        restored = afg_from_json(afg_to_json(original))
        assert validate_afg(restored, registry=default_registry()) == []

"""Unit tests for ApplicationFlowGraph structure."""

import pytest

from repro.afg import (
    ApplicationFlowGraph,
    ComputationMode,
    Edge,
    FileSpec,
    InputBinding,
    TaskNode,
    TaskProperties,
)


def node(id, n_in=0, n_out=1, **props):
    return TaskNode(
        id=id,
        task_type="generic.compute",
        n_in_ports=n_in,
        n_out_ports=n_out,
        properties=TaskProperties(**props) if props else TaskProperties(),
    )


def diamond():
    """a -> (b, c) -> d"""
    afg = ApplicationFlowGraph("diamond")
    afg.add_task(node("a", n_in=0, n_out=2))
    afg.add_task(node("b", n_in=1, n_out=1))
    afg.add_task(node("c", n_in=1, n_out=1))
    afg.add_task(node("d", n_in=2, n_out=0))
    afg.connect("a", "b", src_port=0, dst_port=0, size_mb=1.0)
    afg.connect("a", "c", src_port=1, dst_port=0, size_mb=2.0)
    afg.connect("b", "d", src_port=0, dst_port=0, size_mb=3.0)
    afg.connect("c", "d", src_port=0, dst_port=1, size_mb=4.0)
    return afg


def test_add_and_lookup():
    afg = diamond()
    assert len(afg) == 4
    assert "a" in afg
    assert afg.task("b").id == "b"
    with pytest.raises(KeyError):
        afg.task("zz")


def test_duplicate_task_rejected():
    afg = ApplicationFlowGraph()
    afg.add_task(node("a"))
    with pytest.raises(ValueError):
        afg.add_task(node("a"))


def test_parents_children():
    afg = diamond()
    assert afg.children("a") == ["b", "c"]
    assert afg.parents("d") == ["b", "c"]
    assert afg.parents("a") == []
    assert afg.children("d") == []


def test_entry_exit_tasks():
    afg = diamond()
    assert afg.entry_tasks() == ["a"]
    assert afg.exit_tasks() == ["d"]


def test_connect_validates_endpoints_and_ports():
    afg = ApplicationFlowGraph()
    afg.add_task(node("a", n_in=0, n_out=1))
    afg.add_task(node("b", n_in=1, n_out=0))
    with pytest.raises(KeyError):
        afg.connect("zz", "b")
    with pytest.raises(KeyError):
        afg.connect("a", "zz")
    with pytest.raises(ValueError):
        afg.connect("a", "b", src_port=5)
    with pytest.raises(ValueError):
        afg.connect("a", "b", dst_port=5)


def test_input_port_cannot_be_double_connected():
    afg = ApplicationFlowGraph()
    afg.add_task(node("a", n_in=0, n_out=1))
    afg.add_task(node("b", n_in=0, n_out=1))
    afg.add_task(node("c", n_in=1, n_out=0))
    afg.connect("a", "c", dst_port=0)
    with pytest.raises(ValueError):
        afg.connect("b", "c", dst_port=0)


def test_self_loop_rejected():
    with pytest.raises(ValueError):
        Edge(src="a", dst="a")


def test_edge_validation():
    with pytest.raises(ValueError):
        Edge(src="a", dst="b", size_mb=-1.0)
    with pytest.raises(ValueError):
        Edge(src="a", dst="b", src_port=-1)


def test_topological_order_is_deterministic_and_valid():
    afg = diamond()
    order = afg.topological_order()
    assert order[0] == "a"
    assert order[-1] == "d"
    assert set(order) == {"a", "b", "c", "d"}
    assert order == diamond().topological_order()


def test_cycle_detection():
    afg = ApplicationFlowGraph()
    afg.add_task(node("a", n_in=1, n_out=1))
    afg.add_task(node("b", n_in=1, n_out=1))
    afg.connect("a", "b")
    afg.connect("b", "a")
    assert not afg.is_acyclic()
    with pytest.raises(ValueError, match="cycle"):
        afg.topological_order()


def test_edge_size_between_sums_port_pairs():
    afg = ApplicationFlowGraph()
    afg.add_task(node("a", n_in=0, n_out=2))
    afg.add_task(node("b", n_in=2, n_out=0))
    afg.connect("a", "b", src_port=0, dst_port=0, size_mb=1.5)
    afg.connect("a", "b", src_port=1, dst_port=1, size_mb=2.5)
    assert afg.edge_size_between("a", "b") == pytest.approx(4.0)
    assert afg.parents("b") == ["a"]  # deduplicated


def test_requires_input_transfer():
    afg = ApplicationFlowGraph()
    afg.add_task(node("pure-entry"))
    afg.add_task(
        TaskNode(
            id="file-entry",
            task_type="generic.compute",
            n_in_ports=1,
            n_out_ports=1,
            properties=TaskProperties(
                inputs=(InputBinding(port=0, file=FileSpec("/data/a.dat", 124.88)),)
            ),
        )
    )
    afg.add_task(node("child", n_in=1, n_out=0))
    afg.connect("pure-entry", "child")
    assert not afg.requires_input_transfer("pure-entry")
    assert afg.requires_input_transfer("file-entry")
    assert afg.requires_input_transfer("child")


def test_replace_task_keeps_edges():
    afg = diamond()
    updated = afg.task("b").with_properties(workload_scale=3.0)
    afg.replace_task(updated)
    assert afg.task("b").properties.workload_scale == 3.0
    assert afg.parents("d") == ["b", "c"]
    with pytest.raises(KeyError):
        afg.replace_task(node("zz"))


def test_to_networkx_merges_parallel_edges():
    afg = ApplicationFlowGraph()
    afg.add_task(node("a", n_in=0, n_out=2))
    afg.add_task(node("b", n_in=2, n_out=0))
    afg.connect("a", "b", src_port=0, dst_port=0, size_mb=1.0)
    afg.connect("a", "b", src_port=1, dst_port=1, size_mb=2.0)
    g = afg.to_networkx()
    assert g.number_of_nodes() == 2
    assert g.edges["a", "b"]["size_mb"] == pytest.approx(3.0)


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        ApplicationFlowGraph("")


def test_tasknode_validation():
    with pytest.raises(ValueError):
        TaskNode(id="", task_type="t")
    with pytest.raises(ValueError):
        TaskNode(id="bad id", task_type="t")
    with pytest.raises(ValueError):
        TaskNode(id="a", task_type="")
    with pytest.raises(ValueError):
        TaskNode(id="a", task_type="t", n_in_ports=-1)
    # binding beyond declared ports
    with pytest.raises(ValueError):
        TaskNode(
            id="a",
            task_type="t",
            n_in_ports=1,
            properties=TaskProperties(inputs=(InputBinding(port=3),)),
        )


def test_task_properties_validation():
    with pytest.raises(ValueError):
        TaskProperties(n_nodes=0)
    with pytest.raises(ValueError):
        TaskProperties(mode=ComputationMode.SEQUENTIAL, n_nodes=2)
    with pytest.raises(ValueError):
        TaskProperties(workload_scale=0.0)
    with pytest.raises(ValueError):
        TaskProperties(memory_mb=-1)
    with pytest.raises(ValueError):
        TaskProperties(inputs=(InputBinding(port=0), InputBinding(port=0)))
    props = TaskProperties(mode=ComputationMode.PARALLEL, n_nodes=4)
    assert props.is_parallel


def test_properties_input_helpers():
    props = TaskProperties(
        inputs=(
            InputBinding(port=0, file=FileSpec("/a", 10.0)),
            InputBinding(port=1),
            InputBinding(port=2, file=FileSpec("/b", 5.0)),
        )
    )
    assert len(props.file_inputs()) == 2
    assert len(props.dataflow_inputs()) == 1
    assert props.total_input_size_mb() == pytest.approx(15.0)


def test_filespec_validation():
    with pytest.raises(ValueError):
        FileSpec(path="", size_mb=1.0)
    with pytest.raises(ValueError):
        FileSpec(path="/a", size_mb=-1.0)
    with pytest.raises(ValueError):
        InputBinding(port=-1)

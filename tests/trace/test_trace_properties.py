"""Property tests for trace invariants (Hypothesis).

Two strategies: synthetic event streams (serialization must round-trip
anything JSON-safe), and real full-stack runs across random seeds (the
structural invariants every well-formed trace must satisfy).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import VDCE, Tracer
from repro.trace import EventKind, TraceEvent, events_to_jsonl, parse_jsonl
from repro.workloads import linear_solver_afg

# -- synthetic event streams ------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)
payloads = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(json_scalars, st.lists(json_scalars, max_size=4)),
    max_size=5,
)
events = st.builds(
    TraceEvent,
    time=st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                   allow_infinity=False),
    seq=st.integers(min_value=0, max_value=2**31),
    kind=st.text(min_size=1, max_size=24),
    source=st.text(max_size=24),
    data=payloads,
)


@given(st.lists(events, max_size=50))
def test_jsonl_round_trip_is_identity(event_list):
    assert parse_jsonl(events_to_jsonl(event_list)) == event_list


@given(st.lists(events, max_size=20))
def test_jsonl_round_trip_is_stable(event_list):
    """serialize(parse(serialize(x))) == serialize(x) — canonical form."""
    once = events_to_jsonl(event_list)
    assert events_to_jsonl(parse_jsonl(once)) == once


# -- real traces from full-stack runs ---------------------------------------


def _run_traced(seed: int) -> list:
    tracer = Tracer()
    env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=seed, tracer=tracer)
    env.start_monitoring()
    env.submit(linear_solver_afg(scale=0.1), k=1)
    env.advance(3.0)
    assert not tracer.open_spans, "all spans must be closed after the run"
    return tracer.events()


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_full_stack_trace_invariants(seed):
    trace = _run_traced(seed)
    assert trace, "an instrumented run must record events"

    # timestamps non-decreasing, sequence numbers strictly increasing
    for earlier, later in zip(trace, trace[1:]):
        assert later.time >= earlier.time
        assert later.seq > earlier.seq

    # every span opened is closed, with matching ids and names
    begins = {e.data["span_id"]: e for e in trace
              if e.kind == EventKind.SPAN_BEGIN}
    ends = {e.data["span_id"]: e for e in trace if e.kind == EventKind.SPAN_END}
    assert begins.keys() == ends.keys()
    for span_id, begin in begins.items():
        end = ends[span_id]
        assert end.data["span"] == begin.data["span"]
        assert end.seq > begin.seq
        assert end.data["duration"] >= 0.0

    # every task start has exactly one matching finish
    starts = Counter(e.data["task"] for e in trace
                     if e.kind == EventKind.TASK_START)
    finishes = Counter(e.data["task"] for e in trace
                       if e.kind == EventKind.TASK_FINISH)
    assert starts == finishes
    assert all(count == 1 for count in starts.values())

    # the round trip through JSONL preserves the stream exactly
    assert parse_jsonl(events_to_jsonl(trace)) == trace


def test_parse_rejects_malformed_lines():
    import pytest

    with pytest.raises(ValueError, match="bad trace line 1"):
        parse_jsonl("not json\n")
    with pytest.raises(ValueError, match="bad trace line 2"):
        parse_jsonl('{"time": 0, "seq": 0, "kind": "ok"}\n{"seq": 1}\n')


def test_blank_lines_ignored():
    trace = [TraceEvent(time=1.0, seq=0, kind="x")]
    text = "\n" + events_to_jsonl(trace) + "\n\n"
    assert parse_jsonl(text) == trace

"""Determinism regression tests: the trace hash as an exact oracle.

The kernel's documented guarantee — "two runs with the same seed
produce identical traces regardless of host platform or dict ordering"
— was previously folklore; these tests pin it down end to end.  The
full stack (monitoring + background load generators + scheduling +
execution) runs twice with the same seed and must produce byte-identical
canonical traces; a different seed must diverge.
"""

from repro import VDCE, Tracer
from repro.sim.workload import OrnsteinUhlenbeckLoad, attach_generators
from repro.trace import diff_traces, events_to_jsonl, trace_hash
from repro.workloads import linear_solver_afg


def run_full_stack(seed: int, scale: float = 0.15):
    """One instrumented end-to-end run on a 2-site topology."""
    tracer = Tracer()
    env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=seed, tracer=tracer)
    attach_generators(
        env.sim, env.topology.all_hosts,
        lambda: OrnsteinUhlenbeckLoad(mean=0.8, sigma=0.3, period_s=1.0),
    )
    env.start_monitoring()
    result = env.submit(linear_solver_afg(scale=scale), k=1)
    env.advance(5.0)  # let monitoring/echo run past the application
    return tracer, result


class TestTraceDeterminism:
    def test_same_seed_identical_hash(self):
        tracer_a, result_a = run_full_stack(seed=7)
        tracer_b, result_b = run_full_stack(seed=7)
        assert len(tracer_a) == len(tracer_b)
        assert trace_hash(tracer_a) == trace_hash(tracer_b)
        # the hash stands for the full canonical byte stream
        assert events_to_jsonl(tracer_a) == events_to_jsonl(tracer_b)
        assert diff_traces(tracer_a, tracer_b) == []
        assert result_a.makespan == result_b.makespan

    def test_different_seed_different_hash(self):
        tracer_a, _ = run_full_stack(seed=7)
        tracer_c, _ = run_full_stack(seed=8)
        assert trace_hash(tracer_a) != trace_hash(tracer_c)
        assert diff_traces(tracer_a, tracer_c) != []

    def test_hash_ignores_formatting_not_content(self):
        tracer, _ = run_full_stack(seed=3)
        events = tracer.events()
        assert trace_hash(tracer) == trace_hash(events)
        assert trace_hash(events[:-1]) != trace_hash(events)

    def test_trace_survives_jsonl_round_trip_with_same_hash(self):
        from repro.trace import parse_jsonl

        tracer, _ = run_full_stack(seed=11)
        reparsed = parse_jsonl(events_to_jsonl(tracer))
        assert trace_hash(reparsed) == trace_hash(tracer)

    def test_disabled_tracer_records_nothing(self):
        env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=0)
        env.start_monitoring()
        env.submit(linear_solver_afg(scale=0.1), k=1)
        assert not env.tracer.enabled
        assert len(env.tracer.events()) == 0
        assert env.trace_hash() == trace_hash([])

"""Cross-check: trace event counts must equal RuntimeStats counters.

RuntimeStats and the tracer observe the same actions through different
mechanisms (aggregate counters vs. structured events); every counter
with a corresponding event kind must agree exactly.  A divergence means
an emit site and a counter increment drifted apart.
"""

from repro import VDCE, Tracer
from repro.metrics import event_counts
from repro.trace import EventKind
from repro.workloads import linear_solver_afg


def build_traced_env(**kwargs):
    tracer = Tracer()
    env = VDCE.standard(tracer=tracer, **kwargs)
    return env, tracer


class TestStatsCrosscheck:
    def test_monitoring_counters_match_trace(self):
        env, tracer = build_traced_env(n_sites=1, hosts_per_site=3, seed=0)
        env.start_monitoring()

        # a failure and a recovery so the notification paths fire
        victim = env.topology.all_hosts[0].name
        env.sim.call_at(6.0, lambda: env.topology.host(victim).fail())
        env.sim.call_at(18.0, lambda: env.topology.host(victim).recover())
        env.advance(30.0)

        stats = env.runtime.stats
        counts = event_counts(tracer)
        assert counts[EventKind.MONITOR_REPORT] == stats.monitor_reports
        assert counts[EventKind.ECHO] == stats.echo_packets
        assert counts[EventKind.FAILURE_NOTIFICATION] == stats.failure_notifications
        assert counts[EventKind.RECOVERY_NOTIFICATION] == stats.recovery_notifications
        assert (
            counts.get(EventKind.WORKLOAD_FORWARD, 0) == stats.workload_forwards
        )
        assert (
            counts.get(EventKind.WORKLOAD_SUPPRESS, 0) == stats.workload_suppressed
        )
        # sanity: the failure actually happened and was noticed
        assert stats.failure_notifications >= 1
        assert stats.recovery_notifications >= 1

    def test_execution_counters_match_trace(self):
        env, tracer = build_traced_env(n_sites=2, hosts_per_site=3, seed=1)
        env.submit(linear_solver_afg(scale=0.1), k=1)

        stats = env.runtime.stats
        counts = event_counts(tracer)
        assert counts[EventKind.CHANNEL_SETUP] == stats.channel_setups
        assert counts[EventKind.CHANNEL_ACK] == stats.channel_acks
        assert counts[EventKind.STARTUP_SIGNAL] == stats.startup_signals
        assert counts[EventKind.EXECUTION_REQUEST] == stats.execution_requests
        assert counts[EventKind.DATA_TRANSFER] == stats.data_transfers
        assert counts[EventKind.TASKPERF_UPDATE] == stats.taskperf_updates
        assert (
            counts[EventKind.AFG_MULTICAST] + counts[EventKind.BID_REPLY]
            == stats.scheduler_messages
        )
        assert counts.get(EventKind.RESCHEDULE, 0) == stats.reschedule_requests
        # sanity: this run exercised the paths being cross-checked
        assert stats.channel_setups > 0
        assert stats.data_transfers > 0

    def test_reschedule_counter_matches_trace(self):
        from repro.scheduler import SiteScheduler
        from repro.workloads import linear_pipeline

        env, tracer = build_traced_env(n_sites=1, hosts_per_site=3, seed=3)
        afg = linear_pipeline(n_stages=3, cost=5.0)
        rt = env.runtime
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        victim = table.get("s000").hosts[0]
        proc = rt.execute_process(afg, table, execute_payloads=False)
        env.sim.call_after(1.0, lambda: env.topology.host(victim).fail())
        result = env.sim.run_until_complete(proc)
        assert result.reschedules >= 1

        counts = event_counts(tracer)
        assert counts[EventKind.RESCHEDULE] == rt.stats.reschedule_requests
        assert counts[EventKind.DATA_TRANSFER] == rt.stats.data_transfers

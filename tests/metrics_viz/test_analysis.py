"""Trace-analysis toolkit: critical path, utilization, lag, diff."""

from repro import VDCE, Tracer
from repro.metrics.analysis import (
    analyze_trace,
    critical_path,
    format_analysis,
    format_structural_diff,
    host_timelines,
    schedule_lag,
    structural_diff,
)
from repro.trace.events import EventKind, TraceEvent
from repro.workloads import linear_solver_afg


def _event(time, seq, kind, **data):
    return TraceEvent(time=time, seq=seq, kind=kind, source="test", data=data)


def _chain_trace():
    """a(1s on h0) -> b(2s on h1), plus independent c(4s on h0)."""
    return [
        _event(0.0, 0, EventKind.SCHEDULE_DECISION, task="a"),
        _event(0.0, 1, EventKind.SCHEDULE_DECISION, task="b"),
        _event(0.0, 2, EventKind.SCHEDULE_DECISION, task="c"),
        _event(1.0, 3, EventKind.TASK_START, task="a", hosts=["h0"]),
        _event(1.0, 4, EventKind.TASK_START, task="c", hosts=["h0"]),
        _event(2.0, 5, EventKind.TASK_FINISH, task="a", hosts=["h0"]),
        _event(2.0, 6, EventKind.DATA_TRANSFER, edge=["a", "b"], size_mb=1.0),
        _event(2.5, 7, EventKind.TASK_START, task="b", hosts=["h1"]),
        _event(4.5, 8, EventKind.TASK_FINISH, task="b", hosts=["h1"]),
        _event(5.0, 9, EventKind.TASK_FINISH, task="c", hosts=["h0"]),
    ]


class TestCriticalPath:
    def test_chain_beats_single_long_task(self):
        cp = critical_path(_chain_trace())
        assert cp["tasks"] == 3
        # c alone runs 4s; the a->b chain is 1s + 2s = 3s < 4s
        assert cp["path"] == ["c"]
        assert cp["length_s"] == 4.0

    def test_dependency_chain_wins_when_longer(self):
        events = [e for e in _chain_trace() if e.data.get("task") != "c"]
        cp = critical_path(events)
        assert cp["path"] == ["a", "b"]
        assert cp["length_s"] == 3.0

    def test_empty_trace(self):
        cp = critical_path([])
        assert cp == {"length_s": 0.0, "tasks": 0, "path": []}

    def test_unfinished_tasks_are_skipped(self):
        events = [
            _event(0.0, 0, EventKind.TASK_START, task="a", hosts=["h0"]),
        ]
        assert critical_path(events)["tasks"] == 0


class TestHostTimelines:
    def test_busy_idle_and_utilization(self):
        timelines = host_timelines(_chain_trace())
        # window: 1.0 -> 5.0 (4s).  h0 runs a (1-2) and c (1-5), merged 1-5.
        assert timelines["h0"]["busy_s"] == 4.0
        assert timelines["h0"]["utilization"] == 1.0
        assert timelines["h0"]["tasks"] == 2
        # h1 runs b for 2s of the 4s window
        assert timelines["h1"]["busy_s"] == 2.0
        assert timelines["h1"]["idle_s"] == 2.0
        assert timelines["h1"]["utilization"] == 0.5

    def test_overlapping_intervals_merge(self):
        events = [
            _event(0.0, 0, EventKind.TASK_START, task="a", hosts=["h0"]),
            _event(1.0, 1, EventKind.TASK_START, task="b", hosts=["h0"]),
            _event(2.0, 2, EventKind.TASK_FINISH, task="a", hosts=["h0"]),
            _event(3.0, 3, EventKind.TASK_FINISH, task="b", hosts=["h0"]),
        ]
        tl = host_timelines(events)["h0"]
        assert tl["intervals"] == [(0.0, 3.0)]
        assert tl["busy_s"] == 3.0

    def test_empty(self):
        assert host_timelines([]) == {}


class TestScheduleLag:
    def test_lag_is_decision_to_start(self):
        lag = schedule_lag(_chain_trace())
        assert lag["per_task"] == {"a": 1.0, "b": 2.5, "c": 1.0}
        assert lag["count"] == 3
        assert lag["mean_s"] == 1.5
        assert lag["max_s"] == 2.5

    def test_unscheduled_tasks_absent(self):
        events = [_event(1.0, 0, EventKind.TASK_START, task="x", hosts=["h"])]
        assert schedule_lag(events)["count"] == 0


class TestAnalyzeEndToEnd:
    def test_real_run_analysis(self):
        tracer = Tracer()
        env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=0,
                            tracer=tracer)
        env.submit(linear_solver_afg(scale=0.15), k=1)
        report = analyze_trace(tracer)
        assert report["events"] == len(tracer.events())
        assert report["critical_path"]["path"]
        assert report["critical_path"]["length_s"] > 0
        assert report["host_timelines"]
        assert all(
            0.0 <= tl["utilization"] <= 1.0
            for tl in report["host_timelines"].values()
        )
        assert report["schedule_lag"]["count"] == len(
            report["critical_path"]["path"]
        ) or report["schedule_lag"]["count"] > 0

        text = format_analysis(tracer)
        assert "critical path:" in text
        assert "per-host utilization" in text
        assert "schedule->start lag" in text


class TestStructuralDiff:
    def test_identical_traces(self):
        a = _chain_trace()
        diff = structural_diff(a, list(a))
        assert diff["identical"]
        assert diff["first_divergence"] is None
        assert diff["count_deltas"] == {}
        assert "identical" in format_structural_diff(a, list(a))

    def test_divergent_event_is_located(self):
        a = _chain_trace()
        b = list(a)
        b[4] = _event(1.0, 4, EventKind.TASK_START, task="c", hosts=["h2"])
        diff = structural_diff(a, b)
        assert not diff["identical"]
        assert diff["first_divergence"]["index"] == 4
        assert diff["first_divergence"]["a"]["data"]["hosts"] == ["h0"]
        assert diff["first_divergence"]["b"]["data"]["hosts"] == ["h2"]

    def test_prefix_trace_reports_absent_side(self):
        a = _chain_trace()
        diff = structural_diff(a, a[:-2])
        assert not diff["identical"]
        assert diff["first_divergence"]["index"] == len(a) - 2
        assert diff["first_divergence"]["b"] is None
        assert diff["count_deltas"][EventKind.TASK_FINISH] == {"a": 3, "b": 1}
        text = format_structural_diff(a, a[:-2])
        assert "first divergence" in text
        assert "absent" in text

    def test_count_deltas_only_differing_kinds(self):
        a = _chain_trace()
        b = a + [_event(9.0, 10, EventKind.ECHO, host="h0")]
        diff = structural_diff(a, b)
        assert set(diff["count_deltas"]) == {EventKind.ECHO}

"""MetricsRegistry unit tests: kinds, bucket edges, exporters, escaping."""

import json
import math
import re

import pytest

from repro.metrics.export import (
    METRICS_SCHEMA_VERSION,
    load_snapshot,
    prometheus_from_snapshot,
    prometheus_text,
    registry_snapshot,
    save_snapshot,
    snapshot_hash,
    snapshot_to_json,
)
from repro.metrics.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)


class TestCounter:
    def test_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("msgs_total", "messages")
        c.inc()
        c.inc(2.5)
        c.inc(host="a")
        c.inc(3, host="a")
        assert c.value() == 3.5
        assert c.value(host="a") == 4.0
        assert c.total() == 7.5
        assert c.label_sets() == [(), (("host", "a"),)]

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_overwrites(self):
        c = MetricsRegistry().counter("x")
        c.inc(10)
        c.set_total(3)
        assert c.value() == 3.0

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_is_typeerror(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.histogram("x")


class TestGauge:
    def test_gauge_records_value_and_time(self):
        clock = [0.0]
        reg = MetricsRegistry(clock=lambda: clock[0])
        g = reg.gauge("load")
        g.set(0.5, host="a")
        clock[0] = 2.0
        g.inc(0.25, host="a")
        assert g.value(host="a") == 0.75
        assert g.set_at(host="a") == 2.0
        g.dec(0.75, host="a")
        assert g.value(host="a") == 0.0


class TestHistogramBucketEdges:
    def test_value_equal_to_edge_lands_in_that_bucket(self):
        # Prometheus le semantics: the bound is inclusive
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(5.0)
        assert h.bucket_counts() == [1, 1, 1, 0]

    def test_values_between_edges(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        h.observe(0.5)   # <= 1.0
        h.observe(1.5)   # <= 2.0
        h.observe(4.999)  # <= 5.0
        assert h.bucket_counts() == [1, 1, 1, 0]

    def test_value_above_last_edge_lands_in_inf(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        h.observe(2.0000001)
        h.observe(1e9)
        assert h.bucket_counts() == [0, 0, 2]
        assert h.count() == 2

    def test_cumulative_counts_and_sum(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 3.0):
            h.observe(v)
        assert h.cumulative_counts() == [2, 3, 4]
        assert h.sum() == pytest.approx(6.0)
        assert h.count() == 4

    def test_buckets_must_strictly_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("bad2", buckets=())

    def test_default_buckets(self):
        h = MetricsRegistry().histogram("h")
        assert h.buckets == DEFAULT_BUCKETS


class TestSeries:
    def test_series_appends_timestamped_points(self):
        clock = [0.0]
        reg = MetricsRegistry(clock=lambda: clock[0])
        s = reg.series("load")
        s.observe(0.1, host="a")
        clock[0] = 1.5
        s.observe(0.9, host="a")
        assert s.points(host="a") == [(0.0, 0.1), (1.5, 0.9)]
        assert s.last(host="a") == (1.5, 0.9)
        assert s.last(host="missing") is None


class TestNullRegistry:
    def test_disabled_registry_records_nothing(self):
        reg = NullMetricsRegistry()
        assert not reg.enabled
        reg.counter("x").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        reg.series("s").observe(3.0, host="a")
        assert len(NULL_METRICS) == 0
        assert registry_snapshot(reg) == {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {}, "gauges": {}, "histograms": {}, "series": {},
        }

    def test_null_metric_is_accepted_everywhere(self):
        m = NULL_METRICS.counter("x")
        assert isinstance(m, Counter)
        assert isinstance(NULL_METRICS.histogram("h"), Histogram)
        assert m.value() == 0.0


def _populated_registry() -> MetricsRegistry:
    clock = [1.0]
    reg = MetricsRegistry(clock=lambda: clock[0])
    reg.counter("msgs_total", "messages sent").inc(3, site="s0")
    reg.counter("msgs_total").inc(1, site="s1")
    reg.gauge("temp", "temperature").set(21.5)
    h = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
    h.observe(0.05, op="read")
    h.observe(0.5, op="read")
    h.observe(2.0, op="read")
    reg.series("load", "load series").observe(0.7, host="n0")
    return reg


class TestSnapshot:
    def test_snapshot_round_trips_through_file(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "m.json"
        save_snapshot(reg, str(path))
        loaded = load_snapshot(str(path))
        assert loaded == registry_snapshot(reg)
        assert snapshot_hash(loaded) == reg.snapshot_hash()

    def test_snapshot_is_deterministic_regardless_of_insertion_order(self):
        a = MetricsRegistry()
        a.counter("c").inc(host="x")
        a.counter("c").inc(host="y")
        b = MetricsRegistry()
        b.counter("c").inc(host="y")
        b.counter("c").inc(host="x")
        assert snapshot_to_json(registry_snapshot(a)) == snapshot_to_json(
            registry_snapshot(b)
        )

    def test_snapshot_json_is_canonical(self):
        text = _populated_registry().snapshot_json()
        assert text.endswith("\n")
        assert json.loads(text)  # parseable
        assert ": " not in text  # minimal separators


#: one Prometheus sample line: name{labels} value
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'          # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})?'
    r' (NaN|[+-]?Inf|[+-]?[0-9].*)$'
)


class TestPrometheusExposition:
    def test_every_line_is_well_formed(self):
        text = prometheus_text(_populated_registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE_RE.match(line), f"malformed line: {line!r}"

    def test_histogram_renders_cumulative_buckets_with_inf(self):
        text = prometheus_text(_populated_registry())
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{op="read",le="0.1"} 1' in text
        assert 'lat_bucket{op="read",le="1"} 2' in text
        assert 'lat_bucket{op="read",le="+Inf"} 3' in text
        assert 'lat_count{op="read"} 3' in text
        assert 'lat_sum{op="read"} 2.55' in text

    def test_counter_and_gauge_lines(self):
        text = prometheus_text(_populated_registry())
        assert '# TYPE msgs_total counter' in text
        assert '# HELP msgs_total messages sent' in text
        assert 'msgs_total{site="s0"} 3' in text
        assert 'temp 21.5' in text
        # series exposes its latest value as a gauge
        assert 'load{host="n0"} 0.7' in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(path='a"b\\c\nd')
        text = prometheus_text(reg)
        assert 'c{path="a\\"b\\\\c\\nd"} 1' in text
        for line in text.splitlines():
            if not line.startswith("#"):
                assert _SAMPLE_RE.match(line), f"malformed line: {line!r}"

    def test_help_escaping_and_special_values(self):
        reg = MetricsRegistry()
        reg.gauge("g", "two\nlines").set(math.nan)
        text = prometheus_text(reg)
        assert "# HELP g two\\nlines" in text
        assert "g NaN" in text

    def test_prometheus_from_loaded_snapshot_matches_live(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "m.json"
        save_snapshot(reg, str(path))
        assert prometheus_from_snapshot(load_snapshot(str(path))) == (
            prometheus_text(reg)
        )

"""Metrics determinism: the snapshot hash as the trace hash's counterpart.

Mirrors tests/trace/test_determinism.py — the full stack (monitoring +
load generators + scheduling + execution) runs twice with the same seed
and must produce byte-identical canonical metrics snapshots.
"""

from repro import VDCE
from repro.metrics.export import METRICS_SCHEMA_VERSION, snapshot_to_json
from repro.metrics.registry import MetricsRegistry
from repro.sim.workload import OrnsteinUhlenbeckLoad, attach_generators
from repro.workloads import linear_solver_afg


def run_full_stack(seed: int, scale: float = 0.15):
    """One instrumented end-to-end run on a 2-site topology."""
    env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=seed,
                        metrics=MetricsRegistry())
    attach_generators(
        env.sim, env.topology.all_hosts,
        lambda: OrnsteinUhlenbeckLoad(mean=0.8, sigma=0.3, period_s=1.0),
    )
    env.start_monitoring()
    result = env.submit(linear_solver_afg(scale=scale), k=1)
    env.advance(5.0)  # let monitoring/echo run past the application
    return env, result


class TestMetricsDeterminism:
    def test_same_seed_byte_identical_snapshot(self):
        env_a, result_a = run_full_stack(seed=7)
        env_b, result_b = run_full_stack(seed=7)
        snap_a, snap_b = env_a.metrics_snapshot(), env_b.metrics_snapshot()
        assert snapshot_to_json(snap_a) == snapshot_to_json(snap_b)
        assert env_a.metrics_hash() == env_b.metrics_hash()
        assert env_a.prometheus_metrics() == env_b.prometheus_metrics()
        assert result_a.makespan == result_b.makespan

    def test_different_seed_different_snapshot(self):
        env_a, _ = run_full_stack(seed=7)
        env_c, _ = run_full_stack(seed=8)
        assert env_a.metrics_hash() != env_c.metrics_hash()

    def test_instrumented_run_covers_the_stack(self):
        env, _ = run_full_stack(seed=3)
        snap = env.metrics_snapshot()
        # kernel
        assert "sim_events_total" in snap["counters"]
        assert "sim_queue_depth" in snap["histograms"]
        assert "sim_virtual_time_seconds" in snap["gauges"]
        # monitoring pipeline
        assert "vdce_monitor_reports_by_host_total" in snap["counters"]
        assert "vdce_host_load" in snap["series"]
        assert "vdce_site_queue_depth" in snap["series"]
        assert "vdce_workload_suppression_ratio" in snap["gauges"]
        # scheduler
        assert "vdce_schedule_decisions_total" in snap["counters"]
        assert "vdce_host_bids_total" in snap["counters"]
        assert "vdce_predicted_task_seconds" in snap["histograms"]
        assert "vdce_bid_latency_seconds" in snap["histograms"]
        assert "vdce_schedule_seconds" in snap["histograms"]
        # execution / data movement
        assert "vdce_transfer_mb" in snap["histograms"]
        assert "vdce_transfer_latency_seconds" in snap["histograms"]
        assert "vdce_task_runtime_seconds" in snap["histograms"]
        # prediction refinement
        assert "vdce_prediction_error_ratio" in snap["histograms"]
        # RuntimeStats unification: the dataclass fields become counters
        assert "vdce_data_transfers_total" in snap["counters"]

    def test_timestamps_come_from_the_virtual_clock(self):
        env, _ = run_full_stack(seed=5)
        snap = env.metrics_snapshot()
        horizon = env.sim.now
        for family in snap["series"].values():
            for points in family["values"].values():
                for t, _value in points:
                    assert 0.0 <= t <= horizon

    def test_stats_export_matches_dataclass(self):
        env, _ = run_full_stack(seed=2)
        registry = env.runtime.export_metrics()
        for name, value in env.runtime.stats.as_dict().items():
            counter = registry.get(f"vdce_{name}_total")
            assert counter is not None, name
            assert counter.value() == float(value)

    def test_disabled_metrics_record_nothing(self):
        env = VDCE.standard(n_sites=2, hosts_per_site=2, seed=0)
        env.start_monitoring()
        env.submit(linear_solver_afg(scale=0.1), k=1)
        assert not env.metrics.enabled
        snap = env.metrics_snapshot()
        assert snap == {"schema_version": METRICS_SCHEMA_VERSION,
                        "counters": {}, "gauges": {}, "histograms": {},
                        "series": {}}

"""Tests for the LoadRecorder workload visualisation."""

import pytest

from repro.scheduler import SiteScheduler
from repro.viz import LoadRecorder
from repro.workloads import bag_of_tasks

from tests.runtime.conftest import build_runtime


class TestLoadRecorder:
    def test_records_load_during_execution(self):
        rt = build_runtime()
        recorder = LoadRecorder(rt.sim, rt.topology.all_hosts, period_s=0.5)
        recorder.start()
        afg = bag_of_tasks(n=8, cost=3.0)
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )
        assert len(recorder.times) > 2
        # some host must have shown load > 0 while tasks ran
        assert any(max(s) > 0 for s in recorder.samples.values())
        # all series same length as the time axis
        assert all(len(s) == len(recorder.times)
                   for s in recorder.samples.values())

    def test_render_shared_scale_and_downsampling(self):
        rt = build_runtime()
        recorder = LoadRecorder(rt.sim, rt.topology.all_hosts, period_s=0.1)
        recorder.start()
        rt.topology.host("a1").set_bg_load(3.0)
        rt.sim.run(until=20.0)  # 200 samples > width
        text = recorder.render(width=40)
        lines = text.splitlines()
        assert len(lines) == 5  # 4 hosts + time axis
        for line in lines[:4]:
            body = line.split("|")[1]
            assert len(body) == 40
        assert "samples)" in lines[-1]

    def test_validation(self):
        rt = build_runtime()
        with pytest.raises(ValueError):
            LoadRecorder(rt.sim, rt.topology.all_hosts, period_s=0.0)
        with pytest.raises(ValueError):
            LoadRecorder(rt.sim, [])
        recorder = LoadRecorder(rt.sim, rt.topology.all_hosts)
        recorder.start()
        with pytest.raises(RuntimeError):
            recorder.start()

"""Tests for execution timelines and the composed report."""

import pytest

from repro.metrics import (
    busy_intervals,
    concurrency_profile,
    parallel_efficiency,
)
from repro.scheduler import SiteScheduler
from repro.viz import execution_report
from repro.workloads import bag_of_tasks, linear_pipeline

from tests.runtime.conftest import build_runtime, chain_afg


def run(afg, site_hosts=None, k=0):
    rt = build_runtime(site_hosts=site_hosts)
    table = SiteScheduler(k=k).schedule(afg, rt.federation_view())
    result = rt.sim.run_until_complete(
        rt.execute_process(afg, table, execute_payloads=False)
    )
    return result


class TestTimeline:
    def test_busy_intervals_cover_all_records(self):
        result = run(chain_afg(n=3, scale=2.0))
        intervals = busy_intervals(result)
        total = sum(len(v) for v in intervals.values())
        # each sequential task contributes one interval per host
        assert total == 3
        for host_intervals in intervals.values():
            assert host_intervals == sorted(host_intervals)
            for start, finish in host_intervals:
                assert finish >= start

    def test_concurrency_profile_starts_and_ends_at_zero(self):
        result = run(bag_of_tasks(n=6, cost=2.0))
        profile = concurrency_profile(result)
        assert profile[-1][1] == 0
        assert max(c for _, c in profile) >= 2  # bag really ran in parallel
        times = [t for t, _ in profile]
        assert times == sorted(times)

    def test_chain_has_concurrency_one(self):
        result = run(chain_afg(n=4, scale=1.0))
        profile = concurrency_profile(result)
        assert max(c for _, c in profile) == 1

    def test_parallel_efficiency_bounds_and_ordering(self):
        # a bag on 2 hosts keeps both busy; a chain on 1 host is "efficient"
        # on its single host; a chain spread over hosts is inefficient
        bag = run(bag_of_tasks(n=8, cost=2.0),
                  site_hosts={"alpha": [("h1", 1.0, 256), ("h2", 1.0, 256)]})
        bag_eff = parallel_efficiency(bag)
        assert 0.5 < bag_eff <= 1.01
        chain = run(linear_pipeline(n_stages=4, cost=2.0, edge_mb=5.0),
                    site_hosts={"alpha": [("h1", 1.0, 256),
                                          ("h2", 1.0, 256)]})
        assert parallel_efficiency(chain) <= bag_eff + 1e-9


class TestExecutionReport:
    def test_report_contains_all_sections(self):
        result = run(chain_afg(n=3, scale=1.0))
        report = execution_report(result)
        for needle in (
            "execution report: chain",
            "placement & timing",
            "makespan",          # gantt header
            "phases:",
            "data plane:",
            "parallel eff.",
        ):
            assert needle in report
        # one row per task
        for task_id in result.records:
            assert task_id in report

    def test_cli_report_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "linear-solver", "--scale", "0.15",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "execution report" in out
        assert "parallel eff." in out

    def test_web_report_endpoint(self):
        pytest.importorskip("flask")
        from repro.editor.webapp import create_webapp

        rt = build_runtime()
        app = create_webapp(rt, site="alpha")
        app.config["TESTING"] = True
        client = app.test_client()
        token = client.post(
            "/login", json={"user": "admin", "password": "vdce-admin"}
        ).get_json()["token"]
        headers = {"X-VDCE-Token": token}
        client.post("/applications", json={"name": "app"}, headers=headers)
        src = client.post("/applications/app/tasks",
                          json={"task_type": "generic.source"},
                          headers=headers).get_json()["task_id"]
        snk = client.post("/applications/app/tasks",
                          json={"task_type": "generic.sink"},
                          headers=headers).get_json()["task_id"]
        client.post("/applications/app/edges",
                    json={"src": src, "dst": snk}, headers=headers)
        client.post("/applications/app/submit", json={"k": 0},
                    headers=headers)
        response = client.get("/applications/app/report", headers=headers)
        assert response.status_code == 200
        assert b"execution report: app" in response.data

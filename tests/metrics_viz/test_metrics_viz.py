"""Tests for metrics and visualisation."""

import pytest

from repro.metrics import (
    critical_path_cost,
    format_table,
    host_utilization,
    serial_cost,
    slr,
    speedup,
    summarize_result,
)
from repro.scheduler import SiteScheduler
from repro.viz import gantt, workload_sparkline
from repro.workloads import linear_pipeline, fork_join

from tests.runtime.conftest import build_runtime, chain_afg


class TestScheduleMetrics:
    def test_critical_path_of_pipeline_is_total(self):
        afg = linear_pipeline(n_stages=4, cost=2.0)
        rt = build_runtime()
        perf = rt.repositories["alpha"].task_perf
        assert critical_path_cost(afg, perf) == pytest.approx(8.0)
        assert serial_cost(afg, perf) == pytest.approx(8.0)

    def test_fork_join_cp_vs_serial(self):
        afg = fork_join(width=4, branch_cost=3.0, head_cost=1.0)
        rt = build_runtime()
        perf = rt.repositories["alpha"].task_perf
        assert critical_path_cost(afg, perf) == pytest.approx(1 + 3 + 1)
        assert serial_cost(afg, perf) == pytest.approx(1 + 4 * 3 + 1)

    def test_custom_cost_fn(self):
        afg = linear_pipeline(n_stages=3, cost=1.0)
        assert critical_path_cost(afg, cost=lambda t: 5.0) == pytest.approx(15.0)
        with pytest.raises(ValueError):
            critical_path_cost(afg)

    def test_slr_speedup_validation(self):
        assert slr(10.0, 5.0) == 2.0
        assert speedup(5.0, 10.0) == 2.0
        with pytest.raises(ValueError):
            slr(1.0, 0.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestResultSummary:
    def test_summarize_execution(self):
        rt = build_runtime()
        afg = chain_afg(n=3, scale=2.0)
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        result = rt.sim.run_until_complete(rt.execute_process(afg, table))
        summary = summarize_result(result, afg,
                                   rt.repositories["alpha"].task_perf)
        assert summary.n_tasks == 3
        assert summary.makespan == pytest.approx(result.makespan)
        assert summary.slr >= 1.0 or summary.speedup > 1.0  # fast hosts can beat base
        assert summary.prediction_error >= 0.0
        row = summary.row()
        assert row["scheduler"] == "vdce"

    def test_host_utilization(self):
        rt = build_runtime()
        afg = chain_afg(n=3, scale=2.0)
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        rt.sim.run_until_complete(rt.execute_process(afg, table))
        util = host_utilization(rt.topology)
        assert set(util) == {"a1", "a2", "b1", "b2"}
        assert all(0.0 <= u <= 1.0 for u in util.values())
        assert any(u > 0 for u in util.values())
        with pytest.raises(ValueError):
            host_utilization(rt.topology, horizon=0.0)


class TestFormatTable:
    def test_renders_columns_aligned(self):
        text = format_table(
            [
                {"scheduler": "vdce", "makespan_s": 1.25, "sites": 2},
                {"scheduler": "random", "makespan_s": 10.5, "sites": 1},
            ],
            title="E2",
        )
        lines = text.splitlines()
        assert lines[0] == "E2"
        assert "scheduler" in lines[1]
        assert "vdce" in lines[3]
        assert "random" in lines[4]

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_union_of_columns(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "b" in text.splitlines()[0]


class TestViz:
    def run_app(self):
        rt = build_runtime()
        afg = chain_afg(n=3, scale=2.0)
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        return rt.sim.run_until_complete(rt.execute_process(afg, table))

    def test_gantt_contains_hosts_and_tasks(self):
        result = self.run_app()
        chart = gantt(result)
        for record in result.records.values():
            assert record.hosts[0] in chart
        assert "makespan" in chart
        assert "=" in chart or "t0" in chart

    def test_gantt_width_validation(self):
        result = self.run_app()
        with pytest.raises(ValueError):
            gantt(result, width=5)

    def test_sparkline_shapes(self):
        line = workload_sparkline([0.0, 0.5, 1.0], label="h0")
        assert line.startswith("h0 |")
        assert line.endswith("max=1.00")
        assert len(line.split("|")[1]) == 3

    def test_sparkline_fixed_scale_and_validation(self):
        a = workload_sparkline([1.0], max_value=10.0)
        b = workload_sparkline([1.0], max_value=1.0)
        assert a != b
        with pytest.raises(ValueError):
            workload_sparkline([-1.0])
        assert workload_sparkline([]) == "|"
        assert workload_sparkline([0.0, 0.0]).count("|") == 2

"""phase_timings span pairing: unbalanced, nested, stray ends, suppression."""

from repro.metrics.trace_summary import format_trace_summary, phase_timings
from repro.trace.events import EventKind, TraceEvent
from repro.trace.tracer import Tracer


def _span_begin(time, seq, name, span_id):
    return TraceEvent(time=time, seq=seq, kind=EventKind.SPAN_BEGIN,
                      source="t", data={"span": name, "span_id": span_id})


def _span_end(time, seq, name, span_id, duration):
    return TraceEvent(time=time, seq=seq, kind=EventKind.SPAN_END,
                      source="t",
                      data={"span": name, "span_id": span_id,
                            "duration": duration})


class TestPhaseTimings:
    def test_balanced_spans(self):
        events = [
            _span_begin(0.0, 0, "sched", 1),
            _span_end(1.5, 1, "sched", 1, 1.5),
        ]
        agg = phase_timings(events)["sched"]
        assert agg == {"count": 1, "total_s": 1.5, "max_s": 1.5, "unclosed": 0}

    def test_unclosed_span_is_reported_not_counted(self):
        events = [
            _span_begin(0.0, 0, "exec", 1),
            _span_begin(1.0, 1, "exec", 2),
            _span_end(2.0, 2, "exec", 2, 1.0),
        ]
        agg = phase_timings(events)["exec"]
        assert agg["count"] == 1
        assert agg["total_s"] == 1.0
        assert agg["unclosed"] == 1

    def test_nested_same_name_spans_aggregate_independently(self):
        events = [
            _span_begin(0.0, 0, "x", 1),
            _span_begin(1.0, 1, "x", 2),
            _span_end(2.0, 2, "x", 2, 1.0),
            _span_end(5.0, 3, "x", 1, 5.0),
        ]
        agg = phase_timings(events)["x"]
        assert agg["count"] == 2
        assert agg["total_s"] == 6.0
        assert agg["max_s"] == 5.0
        assert agg["unclosed"] == 0

    def test_stray_end_without_begin_still_contributes(self):
        events = [_span_end(3.0, 0, "orphan", 99, 3.0)]
        agg = phase_timings(events)["orphan"]
        assert agg["count"] == 1
        assert agg["total_s"] == 3.0
        assert agg["unclosed"] == 0  # clamped, never negative

    def test_tracer_round_trip(self):
        tracer = Tracer()
        clock = [0.0]
        tracer.bind_clock(lambda: clock[0])
        with tracer.span("a"):
            clock[0] = 2.0
        sid = tracer.begin_span("b")  # left open on purpose
        assert sid is not None
        timings = phase_timings(tracer)
        assert timings["a"]["count"] == 1
        assert timings["a"]["total_s"] == 2.0
        assert timings["b"] == {"count": 0, "total_s": 0.0, "max_s": 0.0,
                                "unclosed": 1}


class TestFormatTraceSummary:
    def test_empty_phases_are_suppressed(self):
        events = [
            _span_begin(0.0, 0, "used", 1),
            _span_end(1.0, 1, "used", 1, 1.0),
            # "ghost" opened and closed with zero completions would only
            # arise from a broken emitter; simulate via a zero-count agg
        ]
        text = format_trace_summary(events)
        assert "used" in text
        assert "phase timings" in text

    def test_no_spans_means_no_timing_table(self):
        events = [
            TraceEvent(time=0.0, seq=0, kind=EventKind.MONITOR_REPORT,
                       source="m", data={"host": "h0"}),
        ]
        text = format_trace_summary(events)
        assert "phase timings" not in text
        assert "monitor_report" in text

    def test_unclosed_column_rendered(self):
        events = [_span_begin(0.0, 0, "hung", 1)]
        text = format_trace_summary(events)
        assert "unclosed" in text
        assert "hung" in text

"""Tests for task signatures, registry and library implementations."""

import numpy as np
import pytest

from repro.tasklib import ParallelModel, TaskRegistry, TaskSignature, default_registry
from repro.tasklib import c3i, generic, matrix


class TestParallelModel:
    def test_speedup_one_node_is_one(self):
        assert ParallelModel(overhead=0.1).speedup(1) == pytest.approx(1.0)

    def test_zero_overhead_is_linear(self):
        assert ParallelModel(overhead=0.0).speedup(8) == pytest.approx(8.0)

    def test_overhead_saturates_speedup(self):
        m = ParallelModel(overhead=0.25)
        assert m.speedup(4) < 4.0
        # speedup is monotone but sub-linear
        assert m.speedup(8) > m.speedup(4)
        assert m.speedup(8) / 8 < m.speedup(4) / 4

    def test_per_node_work(self):
        m = ParallelModel(overhead=0.0)
        assert m.per_node_work(100.0, 4) == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelModel(overhead=-0.1)
        with pytest.raises(ValueError):
            ParallelModel().speedup(0)


class TestTaskSignature:
    def sig(self, **kw):
        defaults = dict(
            name="t", library="lib", n_in_ports=1, n_out_ports=1,
            base_comp_size=10.0, fn=lambda inputs, scale: [inputs[0]],
        )
        defaults.update(kw)
        return TaskSignature(**defaults)

    def test_qualified_name(self):
        assert self.sig().qualified_name == "lib.t"

    def test_comp_size_scales(self):
        assert self.sig().comp_size(2.5) == pytest.approx(25.0)

    def test_comp_size_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            self.sig().comp_size(0.0)

    def test_memory_ceil_and_floor(self):
        s = self.sig(base_memory_mb=10)
        assert s.memory_mb(0.01) == 1
        assert s.memory_mb(1.55) == 16

    def test_span_work_sequential(self):
        assert self.sig().span_work(2.0, 1) == pytest.approx(20.0)

    def test_span_work_parallel(self):
        s = self.sig(parallel=ParallelModel(overhead=0.0))
        assert s.span_work(1.0, 4) == pytest.approx(2.5)

    def test_span_work_parallel_without_model_raises(self):
        with pytest.raises(ValueError, match="no parallel"):
            self.sig().span_work(1.0, 4)

    def test_run_checks_arity(self):
        s = self.sig()
        assert s.run(["x"]) == ["x"]
        with pytest.raises(ValueError, match="expects 1"):
            s.run([])

    def test_run_checks_output_arity(self):
        s = self.sig(fn=lambda inputs, scale: [])
        with pytest.raises(RuntimeError, match="produced 0"):
            s.run(["x"])

    def test_run_without_implementation(self):
        s = self.sig(fn=None)
        with pytest.raises(RuntimeError, match="no implementation"):
            s.run(["x"])

    def test_name_validation(self):
        with pytest.raises(ValueError):
            self.sig(name="dotted.name")
        with pytest.raises(ValueError):
            self.sig(name="")
        with pytest.raises(ValueError):
            self.sig(library="")
        with pytest.raises(ValueError):
            self.sig(base_comp_size=-1.0)


class TestRegistry:
    def test_default_registry_contains_three_libraries(self):
        reg = default_registry()
        assert set(reg.libraries()) == {"c3i", "generic", "matrix", "signal"}
        assert len(reg) >= 20

    def test_default_registry_is_cached(self):
        assert default_registry() is default_registry()

    def test_get_and_has(self):
        reg = default_registry()
        assert reg.has("matrix.lu_decomposition")
        assert "matrix.lu_decomposition" in reg
        sig = reg.get("matrix.lu_decomposition")
        assert sig.parallelizable
        with pytest.raises(KeyError):
            reg.get("matrix.nonexistent")

    def test_library_entries_sorted(self):
        entries = default_registry().library_entries("matrix")
        names = [e.name for e in entries]
        assert names == sorted(names)
        with pytest.raises(KeyError):
            default_registry().library_entries("nope")

    def test_double_registration_rejected(self):
        reg = TaskRegistry()
        sig = TaskSignature(name="x", library="l", n_in_ports=0, n_out_ports=0,
                            base_comp_size=1.0)
        reg.register(sig)
        with pytest.raises(ValueError):
            reg.register(sig)


class TestMatrixLibrary:
    def test_linear_solver_pipeline_is_numerically_correct(self):
        """generate -> lu -> solve actually solves Ax=b."""
        reg = default_registry()
        a, b = reg.get("matrix.generate_system").run([], scale=0.2)
        (factored,) = reg.get("matrix.lu_decomposition").run([a], scale=0.2)
        (x,) = reg.get("matrix.triangular_solve").run([factored, b], scale=0.2)
        (res,) = reg.get("matrix.residual_norm").run([a, x, b], scale=0.2)
        assert res < 1e-8

    def test_matrix_multiply(self):
        reg = default_registry()
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[1.0], [1.0]])
        (c,) = reg.get("matrix.matrix_multiply").run([a, b])
        assert np.allclose(c, [[3.0], [7.0]])

    def test_generate_system_is_deterministic_per_scale(self):
        reg = default_registry()
        a1, b1 = reg.get("matrix.generate_system").run([], scale=0.3)
        a2, b2 = reg.get("matrix.generate_system").run([], scale=0.3)
        assert np.array_equal(a1, a2)
        assert np.array_equal(b1, b2)

    def test_qr_and_cholesky(self):
        reg = default_registry()
        a, _ = reg.get("matrix.generate_system").run([], scale=0.1)
        q, r = reg.get("matrix.qr_decomposition").run([a])
        assert np.allclose(q @ r, a, atol=1e-8)
        (l,) = reg.get("matrix.cholesky").run([a])
        assert np.allclose(l @ l.T, a, atol=1e-6)

    def test_transpose_and_add(self):
        reg = default_registry()
        a = np.arange(6.0).reshape(2, 3)
        (t,) = reg.get("matrix.transpose").run([a])
        assert t.shape == (3, 2)
        (s,) = reg.get("matrix.matrix_add").run([a, a])
        assert np.allclose(s, 2 * a)


class TestC3ILibrary:
    def test_pipeline_end_to_end(self):
        reg = default_registry()
        (sweep1,) = reg.get("c3i.sensor_sweep").run([], scale=0.5)
        (sweep2,) = reg.get("c3i.sensor_sweep").run([], scale=0.5)
        (t1,) = reg.get("c3i.track_filter").run([sweep1])
        (t2,) = reg.get("c3i.track_filter").run([sweep2])
        (fused,) = reg.get("c3i.track_correlation").run([t1, t2])
        assert fused.shape[1] == 5
        (assessed,) = reg.get("c3i.threat_assessment").run([fused])
        assert assessed.shape[1] == 6
        # scores sorted descending
        scores = assessed[:, 5]
        assert np.all(np.diff(scores) <= 1e-12)
        (text,) = reg.get("c3i.display_format").run([assessed])
        assert "track 000" in text
        (summary,) = reg.get("c3i.intel_archive").run([assessed])
        assert summary["tracks"] == assessed.shape[0]
        assert summary["max_threat"] >= summary["mean_threat"]

    def test_sweep_size_scales(self):
        reg = default_registry()
        (small,) = reg.get("c3i.sensor_sweep").run([], scale=0.25)
        (large,) = reg.get("c3i.sensor_sweep").run([], scale=1.0)
        assert large.shape[0] > small.shape[0]


class TestGenericLibrary:
    def test_split_join_shapes(self):
        reg = default_registry()
        (token,) = reg.get("generic.source").run([], scale=1.0)
        a, b = reg.get("generic.split").run([token])
        (joined,) = reg.get("generic.join").run([a, b])
        assert joined == [token, token]
        assert reg.get("generic.sink").run([joined]) == []

    def test_all_entries_have_consistent_implementations(self):
        """Every library entry with 0 inputs can run; declared arities hold."""
        reg = default_registry()
        for name in reg.names():
            sig = reg.get(name)
            assert sig.fn is not None, f"{name} lacks an implementation"
            if sig.n_in_ports == 0:
                outputs = sig.run([], scale=0.5)
                assert len(outputs) == sig.n_out_ports

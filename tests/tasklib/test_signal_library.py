"""Tests for the signal-processing task library."""

import numpy as np
import pytest

from repro.tasklib import default_registry
from repro.tasklib.signal import _TONES


class TestSignalLibrary:
    def test_registered_in_default_registry(self):
        reg = default_registry()
        assert "signal" in reg.libraries()
        assert reg.has("signal.synthesize")
        assert reg.get("signal.spectrum").parallelizable

    def test_synthesize_deterministic_and_sized(self):
        reg = default_registry()
        (a,) = reg.get("signal.synthesize").run([], scale=0.5)
        (b,) = reg.get("signal.synthesize").run([], scale=0.5)
        assert np.array_equal(a, b)
        (big,) = reg.get("signal.synthesize").run([], scale=1.0)
        assert len(big) > len(a)

    def test_detection_chain_recovers_injected_tones(self):
        """synthesize -> spectrum -> detect_peaks finds the true tones."""
        reg = default_registry()
        (noisy,) = reg.get("signal.synthesize").run([], scale=1.0)
        (spec,) = reg.get("signal.spectrum").run([noisy])
        (peaks,) = reg.get("signal.detect_peaks").run([spec])
        assert len(peaks) >= len(_TONES)
        for tone in _TONES:
            assert min(abs(peaks - tone)) < 0.01, f"tone {tone} not detected"

    def test_lowpass_attenuates_high_tone(self):
        """After the 0.2 cyc/sample low-pass, the 0.31 tone disappears."""
        reg = default_registry()
        (noisy,) = reg.get("signal.synthesize").run([], scale=1.0)
        (filtered,) = reg.get("signal.lowpass_filter").run([noisy])
        (spec,) = reg.get("signal.spectrum").run([filtered])
        freqs, psd = spec[0], spec[1]
        low_band = psd[np.abs(freqs - 0.05) < 0.01].max()
        high_band = psd[np.abs(freqs - 0.31) < 0.01].max()
        assert low_band > 50 * high_band

    def test_correlate_frames_finds_zero_lag_for_identical(self):
        reg = default_registry()
        (sig,) = reg.get("signal.synthesize").run([], scale=0.25)
        ((lag, value),) = reg.get("signal.correlate_frames").run([sig, sig])
        assert lag == 0
        assert value == pytest.approx(1.0, abs=0.01)

    def test_correlate_frames_detects_shift(self):
        reg = default_registry()
        (sig,) = reg.get("signal.synthesize").run([], scale=0.25)
        shifted = np.roll(sig, 37)
        ((lag, _),) = reg.get("signal.correlate_frames").run([sig, shifted])
        assert abs(abs(lag) - 37) <= 1

    def test_decimate_shrinks_by_eight(self):
        reg = default_registry()
        (sig,) = reg.get("signal.synthesize").run([], scale=0.5)
        (small,) = reg.get("signal.decimate").run([sig])
        assert len(small) == pytest.approx(len(sig) / 8, abs=1)

    def test_full_dsp_chain_through_runtime(self):
        """The whole DSP chain executes through the VDCE runtime."""
        from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties
        from repro.scheduler import SiteScheduler
        from tests.runtime.conftest import build_runtime

        afg = ApplicationFlowGraph("dsp")
        for tid, ttype, n_in in [
            ("synth", "signal.synthesize", 0),
            ("filt", "signal.lowpass_filter", 1),
            ("spec", "signal.spectrum", 1),
            ("peaks", "signal.detect_peaks", 1),
        ]:
            afg.add_task(TaskNode(id=tid, task_type=ttype, n_in_ports=n_in,
                                  n_out_ports=1,
                                  properties=TaskProperties(workload_scale=0.5)))
        afg.connect("synth", "filt", size_mb=0.25)
        afg.connect("filt", "spec", size_mb=0.25)
        afg.connect("spec", "peaks", size_mb=0.05)

        rt = build_runtime()
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        result = rt.sim.run_until_complete(rt.execute_process(afg, table))
        (peaks,) = result.outputs["peaks"]
        # the high tone is filtered out; the two low tones survive
        assert min(abs(peaks - 0.05)) < 0.01
        assert min(abs(peaks - 0.12)) < 0.01

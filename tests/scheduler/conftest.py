"""Shared fixtures for scheduler tests: a two-site federation."""

import pytest

from repro.repository import SiteRepository
from repro.scheduler import FederationView
from repro.sim import TopologyBuilder
from repro.tasklib import default_registry


def build_federation(
    site_hosts=None,
    wan_latency_s=0.05,
    wan_bandwidth_mbps=1.0,
    lan_latency_s=0.001,
    lan_bandwidth_mbps=10.0,
    local_site="alpha",
    seed=0,
):
    """Topology + bootstrapped repositories + FederationView.

    ``site_hosts``: {site: [(host, speed, memory_mb), ...]}.  Defaults
    to two heterogeneous sites of three hosts each.
    """
    if site_hosts is None:
        site_hosts = {
            "alpha": [("a-slow", 1.0, 256), ("a-mid", 2.0, 256), ("a-fast", 4.0, 256)],
            "beta": [("b-slow", 1.0, 256), ("b-mid", 2.0, 256), ("b-fast", 4.0, 256)],
        }
    builder = (
        TopologyBuilder(seed=seed)
        .lan_defaults(lan_latency_s, lan_bandwidth_mbps)
        .wan_defaults(wan_latency_s, wan_bandwidth_mbps)
    )
    for site, hosts in site_hosts.items():
        builder.site(site, hosts=hosts)
    topo = builder.build()
    repos = {
        name: SiteRepository.bootstrap(site, default_registry())
        for name, site in topo.sites.items()
    }
    view = FederationView.from_topology(topo, repos, local_site=local_site)
    return topo, repos, view


@pytest.fixture
def federation():
    return build_federation()

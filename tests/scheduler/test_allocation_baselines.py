"""Tests for allocation tables, schedule estimates and baseline schedulers."""

import pytest

from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties
from repro.scheduler import (
    AllocationTable,
    HEFTScheduler,
    LoadBlindScheduler,
    LocalOnlyScheduler,
    MaxMinScheduler,
    MinMinScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SiteScheduler,
    TaskAssignment,
    estimate_schedule,
)

from tests.scheduler.conftest import build_federation


def make_afg(n_stages=4, scale=2.0):
    afg = ApplicationFlowGraph("pipeline")
    afg.add_task(TaskNode(id="t0", task_type="generic.source", n_out_ports=1,
                          properties=TaskProperties(workload_scale=scale)))
    for i in range(1, n_stages):
        afg.add_task(TaskNode(id=f"t{i}", task_type="generic.compute",
                              n_in_ports=1, n_out_ports=1,
                              properties=TaskProperties(workload_scale=scale)))
        afg.connect(f"t{i-1}", f"t{i}", size_mb=1.0)
    return afg


class TestAllocationTable:
    def test_assign_get_contains(self):
        t = AllocationTable("app")
        a = TaskAssignment("x", "s", ("h",), 1.0)
        t.assign(a)
        assert "x" in t
        assert t.get("x") is a
        assert t.site_of("x") == "s"
        assert t.hosts_of("x") == ("h",)
        with pytest.raises(ValueError):
            t.assign(a)
        with pytest.raises(KeyError):
            t.get("zz")

    def test_assignment_validation(self):
        with pytest.raises(ValueError):
            TaskAssignment("x", "s", (), 1.0)
        with pytest.raises(ValueError):
            TaskAssignment("x", "s", ("h", "h"), 1.0)
        with pytest.raises(ValueError):
            TaskAssignment("x", "s", ("h",), -1.0)

    def test_sites_hosts_used_and_per_site(self):
        t = AllocationTable("app")
        t.assign(TaskAssignment("x", "s1", ("h1",), 1.0))
        t.assign(TaskAssignment("y", "s2", ("h2", "h3"), 1.0))
        t.assign(TaskAssignment("z", "s1", ("h1",), 1.0))
        assert t.sites_used() == ["s1", "s2"]
        assert t.hosts_used() == ["h1", "h2", "h3"]
        assert t.tasks_on_site("s1") == ["x", "z"]

    def test_validate_against(self):
        afg = make_afg(n_stages=2)
        t = AllocationTable("pipeline")
        t.assign(TaskAssignment("t0", "s", ("h",), 1.0))
        with pytest.raises(ValueError, match="missing"):
            t.validate_against(afg)
        t.assign(TaskAssignment("t1", "s", ("h",), 1.0))
        t.validate_against(afg)
        t.assign(TaskAssignment("ghost", "s", ("h",), 1.0))
        with pytest.raises(ValueError, match="unknown"):
            t.validate_against(afg)

    def test_dict_roundtrip(self):
        t = AllocationTable("app", scheduler="heft")
        t.assign(TaskAssignment("x", "s1", ("h1", "h2"), 2.5))
        restored = AllocationTable.from_dict(t.to_dict())
        assert restored.application == "app"
        assert restored.scheduler == "heft"
        assert restored.get("x").hosts == ("h1", "h2")
        assert restored.get("x").predicted_time == 2.5


class TestEstimateSchedule:
    def flat_transfer(self, cost=0.0):
        return lambda src, dst, mb: cost

    def test_chain_on_one_host_serialises(self):
        afg = make_afg(n_stages=3)
        t = AllocationTable("pipeline")
        for tid in ("t0", "t1", "t2"):
            t.assign(TaskAssignment(tid, "s", ("h",), 5.0))
        est = estimate_schedule(afg, t, self.flat_transfer())
        assert est.makespan == pytest.approx(15.0)
        assert est.start["t2"] == pytest.approx(10.0)

    def test_transfer_time_counted(self):
        afg = make_afg(n_stages=2)
        t = AllocationTable("pipeline")
        t.assign(TaskAssignment("t0", "s1", ("h1",), 5.0))
        t.assign(TaskAssignment("t1", "s2", ("h2",), 5.0))
        est = estimate_schedule(afg, t, self.flat_transfer(cost=3.0))
        assert est.makespan == pytest.approx(13.0)
        assert est.comm_time == pytest.approx(3.0)

    def test_host_contention_between_branches(self):
        afg = ApplicationFlowGraph("fork")
        afg.add_task(TaskNode(id="s", task_type="generic.split", n_in_ports=0,
                              n_out_ports=2))
        afg.add_task(TaskNode(id="a", task_type="generic.compute",
                              n_in_ports=1, n_out_ports=1))
        afg.add_task(TaskNode(id="b", task_type="generic.compute",
                              n_in_ports=1, n_out_ports=1))
        afg.connect("s", "a", src_port=0)
        afg.connect("s", "b", src_port=1)
        t = AllocationTable("fork")
        t.assign(TaskAssignment("s", "x", ("h",), 1.0))
        t.assign(TaskAssignment("a", "x", ("h",), 4.0))
        t.assign(TaskAssignment("b", "x", ("h",), 4.0))
        est = estimate_schedule(afg, t, self.flat_transfer())
        # a and b share host h back-to-back: 1 + 4 + 4
        assert est.makespan == pytest.approx(9.0)

    def test_slr(self):
        afg = make_afg(n_stages=2)
        t = AllocationTable("pipeline")
        t.assign(TaskAssignment("t0", "s", ("h",), 4.0))
        t.assign(TaskAssignment("t1", "s", ("h",), 4.0))
        est = estimate_schedule(afg, t, self.flat_transfer())
        assert est.slr(4.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            est.slr(0.0)


def site_transfer(view):
    return lambda src, dst, mb: (
        0.0 if src.hosts[0] == dst.hosts[0]
        else view.site_transfer_time(src.site, dst.site, mb)
    )


ALL_SCHEDULERS = [
    ("vdce", lambda: SiteScheduler(k=1)),
    ("local", LocalOnlyScheduler),
    ("load-blind", lambda: LoadBlindScheduler(k=1)),
    ("random", lambda: RandomScheduler(seed=3)),
    ("round-robin", RoundRobinScheduler),
    ("min-min", MinMinScheduler),
    ("max-min", MaxMinScheduler),
    ("heft", HEFTScheduler),
]


class TestBaselines:
    @pytest.mark.parametrize("name,factory", ALL_SCHEDULERS)
    def test_every_scheduler_produces_complete_table(self, name, factory):
        _, _, view = build_federation()
        afg = make_afg(n_stages=5)
        table = factory().schedule(afg, view)
        assert table.is_complete_for(afg)
        table.validate_against(afg)

    def test_random_is_seed_deterministic(self):
        _, _, view = build_federation()
        afg = make_afg()
        t1 = RandomScheduler(seed=5).schedule(afg, view)
        t2 = RandomScheduler(seed=5).schedule(afg, view)
        assert t1.to_dict() == t2.to_dict()

    def test_random_seed_changes_placement(self):
        _, _, view = build_federation()
        afg = make_afg(n_stages=8)
        tables = [RandomScheduler(seed=s).schedule(afg, view).to_dict()
                  for s in range(5)]
        assert any(t != tables[0] for t in tables[1:])

    def test_round_robin_spreads_tasks(self):
        _, _, view = build_federation()
        afg = make_afg(n_stages=6)
        table = RoundRobinScheduler().schedule(afg, view)
        assert len(set(table.hosts_used())) > 1

    def test_local_only_stays_local(self):
        _, _, view = build_federation()
        table = LocalOnlyScheduler().schedule(make_afg(), view)
        assert table.sites_used() == ["alpha"]

    def test_load_blind_ignores_load(self):
        topo, repos, view = build_federation()
        # overload the fast hosts; load-blind should still pick them
        for repo in repos.values():
            for name in repo.resources.host_names():
                if "fast" in name:
                    repo.resources.update_workload(name, load=20.0,
                                                   available_memory_mb=256,
                                                   time=0.0)
        afg = make_afg(n_stages=1)
        blind = LoadBlindScheduler(k=1).schedule(afg, view)
        aware = SiteScheduler(k=1).schedule(afg, view)
        assert "fast" in blind.get("t0").hosts[0]
        assert "fast" not in aware.get("t0").hosts[0]

    def test_heft_beats_random_on_heterogeneous_pipeline(self):
        _, _, view = build_federation()
        afg = make_afg(n_stages=8, scale=4.0)
        heft = HEFTScheduler().schedule(afg, view)
        rnd = RandomScheduler(seed=1).schedule(afg, view)
        xfer = site_transfer(view)
        assert (
            estimate_schedule(afg, heft, xfer).makespan
            <= estimate_schedule(afg, rnd, xfer).makespan
        )

    def test_vdce_close_to_heft_on_pipeline(self):
        _, _, view = build_federation()
        afg = make_afg(n_stages=8, scale=4.0)
        xfer = site_transfer(view)
        vdce = estimate_schedule(afg, SiteScheduler(k=1).schedule(afg, view), xfer)
        heft = estimate_schedule(afg, HEFTScheduler().schedule(afg, view), xfer)
        assert vdce.makespan <= 2.0 * heft.makespan

    def test_minmin_maxmin_differ_on_mixed_widths(self):
        _, _, view = build_federation()
        afg = ApplicationFlowGraph("mixed")
        for i, scale in enumerate([1.0, 1.0, 20.0, 20.0]):
            afg.add_task(TaskNode(id=f"j{i}", task_type="generic.source",
                                  n_out_ports=1,
                                  properties=TaskProperties(workload_scale=scale)))
        mm = MinMinScheduler().schedule(afg, view)
        xm = MaxMinScheduler().schedule(afg, view)
        assert mm.is_complete_for(afg) and xm.is_complete_for(afg)
        # max-min places the big jobs first (they get the fastest hosts)
        big_hosts_xm = {xm.get("j2").hosts[0], xm.get("j3").hosts[0]}
        assert any("fast" in h for h in big_hosts_xm)

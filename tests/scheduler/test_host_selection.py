"""Tests for the Figure 3 host-selection algorithm."""

import pytest

from repro.afg import (
    ApplicationFlowGraph,
    ComputationMode,
    TaskNode,
    TaskProperties,
)
from repro.scheduler import PredictionModel, select_hosts
from repro.scheduler.host_selection import candidate_hosts

from tests.scheduler.conftest import build_federation


def single_task_afg(task_type="generic.source", **props):
    afg = ApplicationFlowGraph("one")
    sig_ports = {
        "generic.source": (0, 1),
        "generic.compute": (1, 1),
        "matrix.lu_decomposition": (1, 1),
    }[task_type]
    afg.add_task(
        TaskNode(
            id="t",
            task_type=task_type,
            n_in_ports=sig_ports[0],
            n_out_ports=sig_ports[1],
            properties=TaskProperties(**props),
        )
    )
    return afg


def test_selects_fastest_host_when_idle(federation):
    _, repos, _ = federation
    afg = single_task_afg()
    bids = select_hosts(afg, repos["alpha"])
    assert bids["t"].hosts == ("a-fast",)
    assert bids["t"].site == "alpha"


def test_load_shifts_selection():
    topo, repos, view = build_federation()
    # make the fast host heavily loaded: 1.0/4 speed-equivalent < 2.0 idle
    repos["alpha"].resources.update_workload("a-fast", load=8.0,
                                             available_memory_mb=256, time=0.0)
    bids = select_hosts(single_task_afg(), repos["alpha"])
    assert bids["t"].hosts == ("a-mid",)


def test_preferred_machine_honoured(federation):
    _, repos, _ = federation
    afg = single_task_afg(preferred_machine="a-slow")
    bids = select_hosts(afg, repos["alpha"])
    assert bids["t"].hosts == ("a-slow",)


def test_preferred_machine_not_at_site_means_no_bid(federation):
    _, repos, _ = federation
    afg = single_task_afg(preferred_machine="b-fast")  # host of site beta
    bids = select_hosts(afg, repos["alpha"])
    assert "t" not in bids


def test_preferred_machine_type_filters(federation):
    _, repos, _ = federation
    # default HostSpec arch/os is sparc/solaris; "SUN solaris" matches via alias
    afg = single_task_afg(preferred_machine_type="SUN solaris")
    bids = select_hosts(afg, repos["alpha"])
    assert bids["t"].hosts == ("a-fast",)
    afg2 = single_task_afg(preferred_machine_type="intel linux")
    assert "t" not in select_hosts(afg2, repos["alpha"])


def test_down_host_excluded(federation):
    _, repos, _ = federation
    repos["alpha"].resources.mark_down("a-fast", time=0.0)
    bids = select_hosts(single_task_afg(), repos["alpha"])
    assert bids["t"].hosts == ("a-mid",)


def test_constraints_db_excludes_hosts(federation):
    _, repos, _ = federation
    # removing a live host's constraints outright is a typed error now;
    # drain it first (the sanctioned decommission sequence)
    repos["alpha"].resources.begin_draining("a-fast", time=0.0)
    repos["alpha"].constraints.remove_host("a-fast")
    bids = select_hosts(single_task_afg(), repos["alpha"])
    assert bids["t"].hosts == ("a-mid",)


def test_parallel_task_gets_host_group(federation):
    _, repos, _ = federation
    afg = single_task_afg(
        task_type="matrix.lu_decomposition",
        mode=ComputationMode.PARALLEL,
        n_nodes=2,
    )
    bids = select_hosts(afg, repos["alpha"])
    assert set(bids["t"].hosts) == {"a-fast", "a-mid"}  # two fastest predictions
    assert len(bids["t"].hosts) == 2
    # group time is the slower member's slice
    single = select_hosts(single_task_afg(task_type="matrix.lu_decomposition"),
                          repos["alpha"])
    assert bids["t"].predicted_time > 0


def test_parallel_task_too_wide_for_site_means_no_bid(federation):
    _, repos, _ = federation
    afg = single_task_afg(
        task_type="matrix.lu_decomposition",
        mode=ComputationMode.PARALLEL,
        n_nodes=10,
    )
    assert select_hosts(afg, repos["alpha"]) == {}


def test_bids_cover_all_runnable_tasks(federation):
    _, repos, _ = federation
    afg = ApplicationFlowGraph("two")
    afg.add_task(TaskNode(id="a", task_type="generic.source", n_out_ports=1))
    afg.add_task(TaskNode(id="b", task_type="generic.compute",
                          n_in_ports=1, n_out_ports=1))
    afg.connect("a", "b")
    bids = select_hosts(afg, repos["alpha"])
    assert set(bids) == {"a", "b"}


def test_predicted_time_matches_model(federation):
    _, repos, _ = federation
    model = PredictionModel()
    bids = select_hosts(single_task_afg(), repos["alpha"], model)
    rec = repos["alpha"].resources.get("a-fast")
    expected = model.predict("generic.source", 1.0, 1, rec,
                             repos["alpha"].task_perf)
    assert bids["t"].predicted_time == pytest.approx(expected)


def test_candidate_hosts_sorted_and_filtered(federation):
    _, repos, _ = federation
    task = single_task_afg().task("t")
    names = [r.name for r in candidate_hosts(task, repos["alpha"])]
    assert names == ["a-fast", "a-mid", "a-slow"]

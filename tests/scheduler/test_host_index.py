"""HostIndex equivalence: indexed candidates == reference scan, always.

The equivalence argument (filtering commutes with sorting) is pinned
here with randomized repositories: for any population of hosts,
installed executables and up/down states — including after host
registration, executable removal, workload churn and quarantine — the
index must return exactly the reference path's answer in exactly its
stable name order.
"""

import random

import pytest

import repro.perf as perf
from repro.afg import TaskNode, TaskProperties
from repro.repository import SiteRepository
from repro.scheduler.host_selection import bid_for_task, candidate_hosts
from repro.scheduler.prediction import PredictionModel
from repro.sim.host import HostSpec

TASK_TYPES = ("math.lu_decompose", "signal.spectrum", "image.convolve")


def _reference_answer(repo, task_type):
    """The pre-index implementation: linear scan, then name sort."""
    return sorted(
        (r for r in repo.resources.up_hosts()
         if repo.constraints.is_runnable(task_type, r.name)),
        key=lambda r: r.name,
    )


def _random_repo(rng, n_hosts):
    repo = SiteRepository("prop-site")
    for i in range(n_hosts):
        name = f"h{i:03d}"
        repo.resources.register_host(
            HostSpec(name=name, speed=rng.choice((1.0, 2.0, 4.0)),
                     memory_mb=rng.choice((128, 256)))
        )
        for task_type in TASK_TYPES:
            if rng.random() < 0.7:
                repo.constraints.register(task_type, name, f"/bin/{name}")
        if rng.random() < 0.2:
            repo.resources.mark_down(name, time=0.0)
    return repo


def _node(task_type, **props):
    return TaskNode(id="t0", task_type=task_type, n_in_ports=0,
                    n_out_ports=1, properties=TaskProperties(**props))


def _mutate(rng, repo, step):
    """One random repository mutation (the events that invalidate caches)."""
    names = repo.resources.host_names()
    kind = rng.randrange(4) if names else 0
    if kind == 0:  # register a brand-new host with some executables
        name = f"new{step:03d}"
        repo.resources.register_host(HostSpec(name=name, speed=2.0))
        for task_type in TASK_TYPES:
            if rng.random() < 0.7:
                repo.constraints.register(task_type, name, f"/bin/{name}")
    elif kind == 1:  # up/down transition
        name = rng.choice(names)
        if repo.resources.get(name).up:
            repo.resources.mark_down(name, time=float(step))
        else:
            repo.resources.mark_up(name, time=float(step))
    elif kind == 2:  # workload report (dynamic write, population unchanged)
        name = rng.choice(names)
        repo.resources.update_workload(
            name, load=rng.random() * 4, available_memory_mb=64,
            time=float(step),
        )
    else:  # decommission: symmetric removal (constraints + resource row)
        repo.deregister_host(rng.choice(names))


@pytest.mark.parametrize("seed", range(6))
def test_index_matches_reference_under_mutation(seed):
    rng = random.Random(seed)
    repo = _random_repo(rng, n_hosts=rng.randrange(4, 24))
    for step in range(30):
        task_type = rng.choice(TASK_TYPES)
        expected = _reference_answer(repo, task_type)
        got = repo.host_index.runnable_up_hosts(task_type)
        assert got == expected, f"seed {seed} step {step} ({task_type})"
        _mutate(rng, repo, step)
    # and once more after the final mutation
    for task_type in TASK_TYPES:
        assert (repo.host_index.runnable_up_hosts(task_type)
                == _reference_answer(repo, task_type))


@pytest.mark.parametrize("seed", range(3))
def test_candidate_hosts_flag_equivalence(seed):
    """candidate_hosts: indexed and reference paths agree, same order."""
    rng = random.Random(100 + seed)
    repo = _random_repo(rng, n_hosts=12)
    nodes = [
        _node(TASK_TYPES[0]),
        _node(TASK_TYPES[1], preferred_machine="h003"),
        _node(TASK_TYPES[2], preferred_machine_type="SUN solaris"),
    ]
    for node in nodes:
        with perf.use_flags(host_index=True):
            indexed = candidate_hosts(node, repo)
        with perf.use_flags(host_index=False):
            reference = candidate_hosts(node, repo)
        assert indexed == reference
        names = [r.name for r in indexed]
        assert names == sorted(names)


def test_candidate_hosts_sorted_order_invariant():
    """The documented invariant: bids are built positionally from a
    name-sorted candidate list, under either flag setting."""
    repo = SiteRepository("order-site")
    for name in ("zeta", "alpha", "mike", "bravo"):
        repo.resources.register_host(HostSpec(name=name))
        repo.constraints.register(TASK_TYPES[0], name, f"/bin/{name}")
    node = _node(TASK_TYPES[0])
    for host_index in (True, False):
        with perf.use_flags(host_index=host_index):
            names = [r.name for r in candidate_hosts(node, repo)]
        assert names == ["alpha", "bravo", "mike", "zeta"]


def test_quarantine_filter_does_not_corrupt_the_index_cache():
    """bid_for_task removes quarantined hosts from its candidate list in
    place; the index must hand out copies so the cached table survives."""
    repo = SiteRepository("quarantine-site")
    for name in ("qa", "qb", "qc"):
        repo.resources.register_host(HostSpec(name=name))
        repo.constraints.register("math.lu_decompose", name, f"/bin/{name}")
    from repro.repository.taskperf import TaskPerfRecord

    repo.task_perf.register(TaskPerfRecord(
        task_type="math.lu_decompose", computation_size=1.0,
        communication_size_mb=0.1, required_memory_mb=16))
    node = _node("math.lu_decompose")
    model = PredictionModel()

    def quarantine_qb(name):
        return None if name == "qb" else 1.0

    with perf.use_flags(host_index=True, predict_cache=True):
        bid = bid_for_task(node, repo, model, lambda _h: 0.0,
                           health_of=quarantine_qb)
        assert bid is not None and "qb" not in bid.hosts
        # the quarantined host must still be in the (cached) table
        names = [r.name for r in candidate_hosts(node, repo)]
    assert names == ["qa", "qb", "qc"]


def test_index_rebuilds_only_on_registration_changes():
    repo = SiteRepository("rebuild-site")
    for i in range(4):
        name = f"r{i}"
        repo.resources.register_host(HostSpec(name=name))
        repo.constraints.register(TASK_TYPES[0], name, f"/bin/{name}")
    repo.host_index.runnable_up_hosts(TASK_TYPES[0])
    builds = repo.host_index.rebuilds
    # dynamic writes refresh the record lists but not the name tables
    repo.resources.update_workload("r1", load=2.0,
                                   available_memory_mb=64, time=1.0)
    repo.host_index.runnable_up_hosts(TASK_TYPES[0])
    assert repo.host_index.rebuilds == builds
    # a registration event does force a table rebuild
    repo.resources.register_host(HostSpec(name="r9"))
    repo.constraints.register(TASK_TYPES[0], "r9", "/bin/r9")
    assert [r.name for r in repo.host_index.runnable_up_hosts(TASK_TYPES[0])] \
        == ["r0", "r1", "r2", "r3", "r9"]
    assert repo.host_index.rebuilds == builds + 1

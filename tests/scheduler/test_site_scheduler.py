"""Tests for the Figure 2 site-scheduler algorithm."""

import pytest

from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties
from repro.scheduler import (
    PredictionModel,
    SchedulingError,
    SiteScheduler,
)

from tests.scheduler.conftest import build_federation


def source(id="src", scale=1.0):
    return TaskNode(id=id, task_type="generic.source", n_out_ports=1,
                    properties=TaskProperties(workload_scale=scale))


def compute(id, scale=1.0, **props):
    return TaskNode(id=id, task_type="generic.compute", n_in_ports=1,
                    n_out_ports=1,
                    properties=TaskProperties(workload_scale=scale, **props))


def sink(id="snk"):
    return TaskNode(id=id, task_type="generic.sink", n_in_ports=1)


def chain_afg(edge_mb=1.0, scales=(1.0, 1.0)):
    afg = ApplicationFlowGraph("chain")
    afg.add_task(source(scale=scales[0]))
    afg.add_task(compute("mid", scale=scales[1]))
    afg.add_task(sink())
    afg.connect("src", "mid", size_mb=edge_mb)
    afg.connect("mid", "snk", size_mb=0.01)
    return afg


def test_entry_task_goes_to_globally_fastest_host():
    # make beta's fast host faster than alpha's
    topo, repos, view = build_federation(
        site_hosts={
            "alpha": [("a1", 1.0, 256), ("a2", 2.0, 256)],
            "beta": [("b1", 8.0, 256), ("b2", 1.0, 256)],
        }
    )
    table = SiteScheduler(k=1).schedule(chain_afg(edge_mb=0.0), view)
    assert table.get("src").site == "beta"
    assert table.get("src").hosts == ("b1",)


def test_huge_edge_keeps_child_with_parent():
    # beta is faster but the WAN is slow and the edge is enormous
    topo, repos, view = build_federation(
        site_hosts={
            "alpha": [("a1", 1.0, 256)],
            "beta": [("b1", 1.01, 256)],
        },
        wan_latency_s=0.1,
        wan_bandwidth_mbps=0.5,
    )
    afg = chain_afg(edge_mb=500.0)
    table = SiteScheduler(k=1).schedule(afg, view)
    # entry goes to beta (slightly faster); child stays at beta (transfer-free)
    assert table.get("src").site == table.get("mid").site


def test_tiny_edge_lets_child_chase_fast_host():
    topo, repos, view = build_federation(
        site_hosts={
            "alpha": [("a1", 1.0, 256)],
            "beta": [("b1", 10.0, 256)],
        },
        wan_latency_s=0.001,
        wan_bandwidth_mbps=100.0,
    )
    # pin the entry task to alpha via preference; child should jump to beta
    afg = ApplicationFlowGraph("x")
    afg.add_task(TaskNode(id="src", task_type="generic.source", n_out_ports=1,
                          properties=TaskProperties(preferred_machine="a1")))
    afg.add_task(compute("mid", scale=10.0))
    afg.add_task(sink())
    afg.connect("src", "mid", size_mb=0.001)
    afg.connect("mid", "snk", size_mb=0.001)
    table = SiteScheduler(k=1).schedule(afg, view)
    assert table.get("src").site == "alpha"
    assert table.get("mid").site == "beta"


def test_k_zero_is_local_only(federation):
    _, _, view = federation
    table = SiteScheduler(k=0).schedule(chain_afg(), view)
    assert table.sites_used() == ["alpha"]


def test_k_selects_nearest_sites_only():
    topo, repos, view = build_federation(
        site_hosts={
            "alpha": [("a1", 1.0, 256)],
            "near": [("n1", 5.0, 256)],
            "far": [("f1", 50.0, 256)],
        },
        local_site="alpha",
    )
    # make 'near' nearer than 'far'
    from repro.scheduler import FederationView
    from repro.sim import LinkSpec

    topo.network.set_wan("alpha", "near", LinkSpec(0.01, 10.0))
    topo.network.set_wan("alpha", "far", LinkSpec(0.5, 10.0))
    view = FederationView.from_topology(topo, repos, "alpha")
    table = SiteScheduler(k=1).schedule(chain_afg(edge_mb=0.0), view)
    # k=1 admits only the nearest remote site, so 'far' (the fastest host
    # in the federation) must not be used
    assert "far" not in table.sites_used()
    assert table.get("src").site == "near"


def test_no_feasible_site_raises(federation):
    _, repos, view = federation
    afg = ApplicationFlowGraph("x")
    afg.add_task(TaskNode(id="t", task_type="generic.source", n_out_ports=1,
                          properties=TaskProperties(preferred_machine="nowhere")))
    with pytest.raises(SchedulingError, match="no site can run"):
        SiteScheduler(k=1).schedule(afg, view)


def test_placement_order_follows_levels(federation):
    _, _, view = federation
    # fork: src -> (heavy, light) ; heavy has much larger level
    afg = ApplicationFlowGraph("fork")
    afg.add_task(TaskNode(id="src", task_type="generic.split", n_in_ports=1,
                          n_out_ports=2,
                          properties=TaskProperties()))
    # make src an entry by using source instead
    afg = ApplicationFlowGraph("fork")
    afg.add_task(source())
    afg.add_task(TaskNode(id="fan", task_type="generic.split", n_in_ports=1,
                          n_out_ports=2))
    afg.add_task(compute("heavy", scale=100.0))
    afg.add_task(compute("light", scale=1.0))
    afg.connect("src", "fan")
    afg.connect("fan", "heavy", src_port=0)
    afg.connect("fan", "light", src_port=1)
    _, order = SiteScheduler(k=1).schedule_with_trace(afg, view)
    assert order.index("heavy") < order.index("light")
    assert order[0] == "src"


def test_fifo_ablation_changes_order(federation):
    _, _, view = federation
    afg = ApplicationFlowGraph("fork")
    afg.add_task(source())
    afg.add_task(TaskNode(id="fan", task_type="generic.split", n_in_ports=1,
                          n_out_ports=2))
    afg.add_task(compute("z-heavy", scale=100.0))
    afg.add_task(compute("a-light", scale=1.0))
    afg.connect("src", "fan")
    afg.connect("fan", "z-heavy", src_port=0)
    afg.connect("fan", "a-light", src_port=1)
    _, fifo_order = SiteScheduler(
        k=1, use_level_priority=False
    ).schedule_with_trace(afg, view)
    # FIFO appends children in afg.children order: z-heavy then a-light
    assert fifo_order.index("z-heavy") < fifo_order.index("a-light")
    _, level_order = SiteScheduler(k=1).schedule_with_trace(afg, view)
    assert level_order.index("z-heavy") < level_order.index("a-light")


def test_table_is_complete_and_valid(federation):
    _, _, view = federation
    afg = chain_afg()
    table = SiteScheduler(k=1).schedule(afg, view)
    assert table.is_complete_for(afg)
    table.validate_against(afg)
    assert len(table) == 3
    assert table.scheduler == "vdce"


def test_negative_k_rejected():
    with pytest.raises(ValueError):
        SiteScheduler(k=-1)


def test_parallel_task_scheduled_across_group(federation):
    _, _, view = federation
    from repro.afg import ComputationMode

    afg = ApplicationFlowGraph("par")
    afg.add_task(TaskNode(
        id="gen", task_type="matrix.generate_system", n_out_ports=2))
    afg.add_task(TaskNode(
        id="lu", task_type="matrix.lu_decomposition", n_in_ports=1,
        n_out_ports=1,
        properties=TaskProperties(mode=ComputationMode.PARALLEL, n_nodes=2)))
    afg.add_task(TaskNode(
        id="solve", task_type="matrix.triangular_solve", n_in_ports=2,
        n_out_ports=1))
    afg.add_task(TaskNode(
        id="out", task_type="generic.sink", n_in_ports=1))
    afg.connect("gen", "lu", src_port=0, size_mb=4.0)
    afg.connect("gen", "solve", src_port=1, dst_port=1, size_mb=0.5)
    afg.connect("lu", "solve", dst_port=0, size_mb=4.0)
    afg.connect("solve", "out", size_mb=0.5)
    table = SiteScheduler(k=1).schedule(afg, view)
    assert len(table.get("lu").hosts) == 2
    assert len(set(table.get("lu").hosts)) == 2

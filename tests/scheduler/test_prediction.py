"""Tests for the performance-prediction model."""

import pytest

from repro.repository.resources import HostRecord
from repro.repository.taskperf import TaskPerfRecord, TaskPerformanceDB
from repro.scheduler import PredictionModel
from repro.sim import HostSpec
from repro.tasklib import ParallelModel


def make_db():
    db = TaskPerformanceDB("s")
    db.register(TaskPerfRecord("seq", computation_size=10.0,
                               communication_size_mb=1.0, required_memory_mb=32))
    db.register(TaskPerfRecord("par", computation_size=40.0,
                               communication_size_mb=1.0, required_memory_mb=32,
                               parallel=ParallelModel(overhead=0.0)))
    return db


def record(name="h", speed=1.0, load=0.0, avail_mb=256):
    return HostRecord(
        spec=HostSpec(name=name, speed=speed, memory_mb=avail_mb),
        site="s",
        load=load,
        available_memory_mb=avail_mb,
    )


def test_idle_unit_host_predicts_computation_size():
    db = make_db()
    model = PredictionModel()
    assert model.predict("seq", 1.0, 1, record(), db) == pytest.approx(10.0)


def test_speed_and_scale():
    db = make_db()
    model = PredictionModel()
    t = model.predict("seq", 2.0, 1, record(speed=4.0), db)
    assert t == pytest.approx(20.0 / 4.0)


def test_load_inflates_prediction():
    db = make_db()
    model = PredictionModel()
    t = model.predict("seq", 1.0, 1, record(load=1.5), db)
    assert t == pytest.approx(10.0 * 2.5)


def test_ignore_load_flag():
    db = make_db()
    model = PredictionModel(ignore_load=True)
    t = model.predict("seq", 1.0, 1, record(load=9.0), db)
    assert t == pytest.approx(10.0)


def test_memory_penalty_applied_when_oversubscribed():
    db = make_db()
    model = PredictionModel(memory_penalty=4.0)
    tight = record(avail_mb=16)  # task needs 32
    assert model.predict("seq", 1.0, 1, tight, db) == pytest.approx(40.0)


def test_memory_penalty_uses_explicit_memory_override():
    db = make_db()
    model = PredictionModel(memory_penalty=4.0)
    host = record(avail_mb=64)
    # default requirement 32 fits; override of 100 does not
    assert model.predict("seq", 1.0, 1, host, db) == pytest.approx(10.0)
    assert model.predict("seq", 1.0, 1, host, db, memory_mb=100) == pytest.approx(40.0)


def test_parallel_speedup_divides_span():
    db = make_db()
    model = PredictionModel()
    t = model.predict("par", 1.0, 4, record(), db)
    assert t == pytest.approx(10.0)  # 40 / perfect speedup 4


def test_parallel_on_sequential_task_rejected():
    db = make_db()
    with pytest.raises(ValueError, match="not parallelizable"):
        PredictionModel().predict("seq", 1.0, 2, record(), db)


def test_predict_group_is_slowest_member():
    db = make_db()
    model = PredictionModel()
    fast, slow = record("f", speed=2.0), record("s2", speed=1.0)
    t = model.predict_group("par", 1.0, [fast, slow], db)
    # per-node slice is 20 work (speedup 2); slow host: 20 s, fast: 10 s
    assert t == pytest.approx(20.0)


def test_predict_group_empty_rejected():
    db = make_db()
    with pytest.raises(ValueError):
        PredictionModel().predict_group("par", 1.0, [], db)


def test_calibration_factor_applied():
    db = make_db()
    db.record_execution("seq", "h", expected_s=10.0, measured_s=15.0)
    model = PredictionModel()
    assert model.predict("seq", 1.0, 1, record(), db) == pytest.approx(15.0)
    uncalibrated = PredictionModel(use_calibration=False)
    assert uncalibrated.predict("seq", 1.0, 1, record(), db) == pytest.approx(10.0)


def test_noise_is_deterministic_and_bounded():
    db = make_db()
    model = PredictionModel(noise=0.3, noise_seed=7)
    t1 = model.predict("seq", 1.0, 1, record(), db)
    t2 = model.predict("seq", 1.0, 1, record(), db)
    assert t1 == t2
    assert 7.0 <= t1 <= 13.0
    other_host = model.predict("seq", 1.0, 1, record(name="other"), db)
    assert other_host != t1  # noise varies per host


def test_noise_seed_changes_draw():
    db = make_db()
    a = PredictionModel(noise=0.3, noise_seed=1).predict("seq", 1.0, 1, record(), db)
    b = PredictionModel(noise=0.3, noise_seed=2).predict("seq", 1.0, 1, record(), db)
    assert a != b


def test_model_validation():
    with pytest.raises(ValueError):
        PredictionModel(memory_penalty=0.5)
    with pytest.raises(ValueError):
        PredictionModel(noise=1.0)
    with pytest.raises(ValueError):
        PredictionModel(noise=-0.1)

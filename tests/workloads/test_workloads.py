"""Tests for the workload generators."""

import pytest

from repro.afg import afg_to_dict, validate_afg
from repro.tasklib import default_registry
from repro.workloads import (
    RandomDAGConfig,
    bag_of_tasks,
    figure1_afg,
    fork_join,
    linear_pipeline,
    linear_solver_afg,
    random_dag,
    reduction_tree,
    surveillance_afg,
)


class TestLinearSolver:
    def test_figure1_structure(self):
        afg = figure1_afg()
        assert "LU_Decomposition" in afg
        assert "Matrix_Multiplication" in afg
        lu = afg.task("LU_Decomposition")
        assert lu.properties.is_parallel
        assert lu.properties.n_nodes == 2
        assert lu.properties.total_input_size_mb() == pytest.approx(124.88)
        mm = afg.task("Matrix_Multiplication")
        assert mm.properties.preferred_machine_type == "SUN solaris"
        assert mm.properties.n_nodes == 1
        assert len(mm.properties.dataflow_inputs()) == 2
        assert validate_afg(afg, registry=default_registry()) == []

    def test_linear_solver_validates(self):
        afg = linear_solver_afg(scale=0.3)
        assert validate_afg(afg, registry=default_registry()) == []
        assert set(afg.entry_tasks()) == {"generate", "generate2"}
        assert afg.exit_tasks() == ["verify"]

    def test_linear_solver_without_verify(self):
        afg = linear_solver_afg(scale=0.3, verify=False)
        assert afg.exit_tasks() == ["solve"]

    def test_sequential_lu_variant(self):
        afg = linear_solver_afg(parallel_lu_nodes=1)
        assert not afg.task("lu").properties.is_parallel


class TestSurveillance:
    def test_structure_scales_with_sensors(self):
        for n in (2, 3, 5):
            afg = surveillance_afg(n_sensors=n)
            assert validate_afg(afg, registry=default_registry()) == []
            assert len(afg.entry_tasks()) == n
            assert sorted(afg.exit_tasks()) == ["archive", "display"]
            # n-1 pairwise correlations
            corr = [t.id for t in afg if t.task_type == "c3i.track_correlation"]
            assert len(corr) == n - 1

    def test_minimum_sensors(self):
        with pytest.raises(ValueError):
            surveillance_afg(n_sensors=1)


class TestRandomDAG:
    def test_deterministic_per_seed(self):
        cfg = RandomDAGConfig(n_tasks=30, seed=5)
        assert afg_to_dict(random_dag(cfg)) == afg_to_dict(random_dag(cfg))
        other = RandomDAGConfig(n_tasks=30, seed=6)
        assert afg_to_dict(random_dag(cfg)) != afg_to_dict(random_dag(other))

    def test_task_count_and_validity(self):
        for n in (1, 7, 40):
            afg = random_dag(RandomDAGConfig(n_tasks=n, seed=1))
            assert len(afg) == n
            assert validate_afg(afg) == []  # structural only (generic types)
            assert afg.is_acyclic()

    def test_fan_in_bounded(self):
        cfg = RandomDAGConfig(n_tasks=50, max_fan_in=2, seed=2)
        afg = random_dag(cfg)
        assert all(t.n_in_ports <= 2 for t in afg)

    def test_cost_heterogeneity_range(self):
        cfg = RandomDAGConfig(n_tasks=50, mean_cost=4.0,
                              cost_heterogeneity=0.5, seed=3)
        afg = random_dag(cfg)
        scales = [t.properties.workload_scale for t in afg]
        assert all(2.0 <= s <= 6.0 for s in scales)
        assert max(scales) > min(scales)

    def test_zero_ccr_means_no_data(self):
        afg = random_dag(RandomDAGConfig(n_tasks=20, ccr=0.0, seed=4))
        assert all(e.size_mb == 0.0 for e in afg.edges)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomDAGConfig(n_tasks=0)
        with pytest.raises(ValueError):
            RandomDAGConfig(width=0)
        with pytest.raises(ValueError):
            RandomDAGConfig(cost_heterogeneity=1.0)
        with pytest.raises(ValueError):
            RandomDAGConfig(ccr=-1.0)


class TestPipelineShapes:
    def test_linear_pipeline(self):
        afg = linear_pipeline(n_stages=5, cost=3.0)
        assert len(afg) == 5
        assert len(afg.edges) == 4
        assert validate_afg(afg) == []
        with pytest.raises(ValueError):
            linear_pipeline(n_stages=0)

    def test_fork_join(self):
        afg = fork_join(width=6)
        assert len(afg) == 8
        assert len(afg.entry_tasks()) == 1
        assert len(afg.exit_tasks()) == 1
        assert validate_afg(afg) == []

    def test_reduction_tree(self):
        afg = reduction_tree(leaves=8)
        assert len(afg.entry_tasks()) == 8
        assert len(afg.exit_tasks()) == 1
        assert len(afg) == 8 + 7
        assert validate_afg(afg) == []
        with pytest.raises(ValueError):
            reduction_tree(leaves=6)

    def test_bag_of_tasks(self):
        afg = bag_of_tasks(n=10, heterogeneity=0.5, seed=1)
        assert len(afg) == 10
        assert not afg.edges
        scales = [t.properties.workload_scale for t in afg]
        assert max(scales) > min(scales)

"""Stress tests for the real-socket substrate."""

import threading

import numpy as np
import pytest

from repro.net import CommunicationProxy
from repro.runtime import LocalDataManager
from repro.scheduler import AllocationTable, TaskAssignment
from repro.workloads import reduction_tree


class TestProxyStress:
    def test_many_concurrent_channels(self):
        """32 channels into one proxy, interleaved sends, no cross-talk."""
        with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
            edges = [("a", "b", i, 0) for i in range(32)]
            channels = {
                e: src.open_channel("stress", e, dst.address, "dst")
                for e in edges
            }
            for i, e in enumerate(edges):
                channels[e].send({"edge": i, "payload": list(range(i))})
            for i, e in enumerate(edges):
                got = dst.receive(e, timeout_s=10.0)
                assert got == {"edge": i, "payload": list(range(i))}
            for channel in channels.values():
                channel.close()
            assert dst.setups_accepted == 32
            assert dst.payloads_received == 32

    def test_concurrent_senders_from_threads(self):
        """Real threads hammering one destination proxy concurrently."""
        with CommunicationProxy("dst") as dst:
            n_senders, n_messages = 8, 25
            errors = []

            def sender(index):
                try:
                    with CommunicationProxy(f"src{index}") as src:
                        edge = (f"s{index}", "d", 0, 0)
                        channel = src.open_channel(
                            "stress", edge, dst.address, "dst"
                        )
                        for m in range(n_messages):
                            channel.send((index, m))
                        channel.close()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=sender, args=(i,))
                       for i in range(n_senders)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(20.0)
            assert not errors
            for i in range(n_senders):
                edge = (f"s{i}", "d", 0, 0)
                got = [dst.receive(edge, timeout_s=10.0)
                       for _ in range(n_messages)]
                # per-channel FIFO holds
                assert got == [(i, m) for m in range(n_messages)]

    def test_large_numpy_payload_roundtrip(self):
        payload = np.random.default_rng(1).standard_normal((400, 400))
        with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
            edge = ("a", "b", 0, 0)
            channel = src.open_channel("big", edge, dst.address, "dst")
            channel.send(payload)
            got = dst.receive(edge, timeout_s=20.0)
            assert np.array_equal(got, payload)
            assert channel.bytes_sent > payload.nbytes
            channel.close()


class TestRealReductionTree:
    def test_15_task_reduction_over_sockets(self):
        """A full in-tree of variadic merges runs over real TCP."""
        afg = reduction_tree(leaves=8, leaf_cost=0.01, inner_cost=0.01)
        table = AllocationTable(afg.name, scheduler="manual")
        hosts = [f"n{i}" for i in range(4)]
        for i, task in enumerate(afg.topological_order()):
            table.assign(TaskAssignment(task, "local", (hosts[i % 4],), 0.01))
        report = LocalDataManager(timeout_s=30.0).execute(afg, table)
        assert report.channels == len(afg.edges) == 14
        root = [t for t in report.outputs][0]
        (value,) = report.outputs[root]
        # the root receives a nested pair-merge of all 8 leaf tokens
        text = str(value)
        assert text.count("source") == 8

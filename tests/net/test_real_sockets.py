"""Tests for the real-TCP Data Manager (paper §4.2 over genuine sockets)."""

import socket
import threading

import numpy as np
import pytest

from repro.net import (
    Ack,
    ChannelSetup,
    CommunicationProxy,
    Data,
    Fin,
    ProxyError,
    read_message,
    write_message,
)
from repro.net.messages import WireError
from repro.runtime.data_manager import LocalDataManager
from repro.scheduler import AllocationTable, TaskAssignment
from repro.workloads import linear_solver_afg, surveillance_afg


class TestWireFormat:
    def socket_pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_roundtrip_all_message_types(self):
        a, b = self.socket_pair()
        edge = ("x", "y", 0, 0)
        for message in (
            ChannelSetup("app", edge, "h1", "h2"),
            Ack("app", edge),
            Data("app", edge, {"k": np.arange(3)}),
            Fin("app", edge),
        ):
            write_message(a, message)
            received = read_message(b)
            assert type(received) is type(message)
            assert received.edge == edge
        a.close()
        b.close()

    def test_numpy_payload_exact(self):
        a, b = self.socket_pair()
        payload = np.random.default_rng(0).standard_normal((50, 50))
        write_message(a, Data("app", ("x", "y", 0, 0), payload))
        received = read_message(b)
        assert np.array_equal(received.payload, payload)
        a.close()
        b.close()

    def test_closed_connection_raises_wire_error(self):
        a, b = self.socket_pair()
        a.close()
        with pytest.raises(WireError):
            read_message(b)
        b.close()

    def test_partial_frame_raises(self):
        a, b = self.socket_pair()
        a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(WireError):
            read_message(b)
        b.close()


class TestCommunicationProxy:
    def test_channel_setup_ack_and_data(self):
        with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
            edge = ("a", "b", 0, 0)
            channel = src.open_channel("app", edge, dst.address, "dst")
            channel.send([1, 2, 3])
            assert dst.receive(edge, timeout_s=5.0) == [1, 2, 3]
            channel.close()
            assert dst.setups_accepted == 1
            assert dst.acks_sent == 1
            assert dst.payloads_received == 1
            assert channel.bytes_sent > 0

    def test_multiple_channels_multiplex_by_edge(self):
        with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
            e1, e2 = ("a", "c", 0, 0), ("b", "c", 0, 1)
            c1 = src.open_channel("app", e1, dst.address, "dst")
            c2 = src.open_channel("app", e2, dst.address, "dst")
            c2.send("from-b")
            c1.send("from-a")
            assert dst.receive(e1) == "from-a"
            assert dst.receive(e2) == "from-b"
            c1.close()
            c2.close()

    def test_receive_timeout_raises(self):
        with CommunicationProxy("dst") as dst:
            with pytest.raises(ProxyError, match="timed out"):
                dst.receive(("a", "b", 0, 0), timeout_s=0.1)

    def test_send_after_close_raises(self):
        with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
            channel = src.open_channel("app", ("a", "b", 0, 0), dst.address, "dst")
            channel.close()
            with pytest.raises(ProxyError):
                channel.send("late")


class TestLocalDataManager:
    def table_for(self, afg, hosts):
        table = AllocationTable(afg.name, scheduler="manual")
        for i, task in enumerate(afg.topological_order()):
            table.assign(TaskAssignment(task, "local", (hosts[i % len(hosts)],), 0.1))
        return table

    def test_linear_solver_runs_for_real_and_is_correct(self):
        afg = linear_solver_afg(scale=0.15, parallel_lu_nodes=1)
        table = self.table_for(afg, ["h0", "h1"])
        report = LocalDataManager(timeout_s=30.0).execute(afg, table)
        (residual,) = report.outputs["verify"]
        assert residual < 1e-8
        assert report.channels == len(afg.edges)
        assert report.acks == len(afg.edges)
        assert report.payloads == len(afg.edges)
        assert report.bytes_sent > 0
        assert report.makespan_wall_s > 0

    def test_c3i_pipeline_runs_for_real(self):
        afg = surveillance_afg(n_sensors=2, scale=0.25)
        table = self.table_for(afg, ["h0", "h1", "h2"])
        report = LocalDataManager(timeout_s=30.0).execute(afg, table)
        assert "display" in report.outputs
        assert "archive" in report.outputs
        (summary,) = report.outputs["archive"]
        assert summary["tracks"] > 0

    def test_real_matches_simulated_outputs(self):
        """The two Data Manager implementations compute identical results."""
        from repro.scheduler import SiteScheduler
        from tests.runtime.conftest import build_runtime

        afg = linear_solver_afg(scale=0.15, parallel_lu_nodes=1)

        rt = build_runtime()
        sim_table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        sim_result = rt.sim.run_until_complete(rt.execute_process(afg, sim_table))

        real_table = self.table_for(afg, ["h0"])
        real_report = LocalDataManager(timeout_s=30.0).execute(afg, real_table)

        (sim_residual,) = sim_result.outputs["verify"]
        (real_residual,) = real_report.outputs["verify"]
        assert sim_residual == pytest.approx(real_residual, abs=1e-12)

    def test_task_records_have_wall_times(self):
        afg = linear_solver_afg(scale=0.1, parallel_lu_nodes=1, verify=False)
        table = self.table_for(afg, ["h0"])
        report = LocalDataManager(timeout_s=30.0).execute(afg, table)
        for record in report.records.values():
            assert record.finished_at >= record.started_at

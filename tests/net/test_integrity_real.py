"""Real-socket half of DESIGN §16: hashes on the wire, fast failure.

The simulated path repairs (refetch, lineage regeneration); over real
one-directional TCP channels the receiver cannot ask the producer for
anything, so the real path's contract is *detection only*: a tampered
payload raises typed before any task consumes it, and a failed task
aborts its dependents within one poll slice instead of burning the
full timeout.
"""

import time

import numpy as np
import pytest

from repro.errors import AggregateExecutionError, CorruptPayloadError
from repro.net.proxy import CommunicationProxy, ProxyAborted
from repro.runtime.checkpoint import value_hash
from repro.runtime.data_manager import LocalDataManager
from repro.scheduler import AllocationTable, TaskAssignment
from repro.tasklib import TaskRegistry, TaskSignature
from repro.workloads import linear_solver_afg


def table_for(afg, hosts):
    table = AllocationTable(afg.name, scheduler="manual")
    for i, task in enumerate(afg.topological_order()):
        table.assign(
            TaskAssignment(task, "local", (hosts[i % len(hosts)],), 0.1)
        )
    return table


class TestWireHashing:
    def test_verified_channel_stamps_and_checks_the_hash(self):
        with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
            edge = ("a", "b", 0, 0)
            channel = src.open_channel(
                "app", edge, dst.address, "dst", verify_hashes=True
            )
            payload = np.arange(12, dtype=np.float64)
            channel.send(payload)
            received = dst.receive(edge, timeout_s=5.0)
            np.testing.assert_array_equal(received, payload)
            assert dst.payloads_verified == 1
            assert dst.hash_mismatches == 0
            assert dst.edge_hashes[edge] == value_hash(payload)
            channel.close()

    def test_tampered_payload_raises_typed_before_consumption(self):
        with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
            edge = ("a", "b", 0, 0)
            channel = src.open_channel(
                "app", edge, dst.address, "dst", verify_hashes=True
            )
            # the tamper hook mangles bytes AFTER hashing: exactly what a
            # flaky NIC or rotten disk cache does to a framed payload
            channel.tamper = lambda value: [v + 1 for v in value]
            channel.send([1, 2, 3])
            with pytest.raises(CorruptPayloadError) as excinfo:
                dst.receive(edge, timeout_s=5.0)
            assert dst.hash_mismatches == 1
            assert excinfo.value.expected_hash != excinfo.value.actual_hash
            channel.close()

    def test_unverified_channel_records_nothing(self):
        with CommunicationProxy("src") as src, CommunicationProxy("dst") as dst:
            edge = ("a", "b", 0, 0)
            channel = src.open_channel("app", edge, dst.address, "dst")
            channel.send([1, 2, 3])
            assert dst.receive(edge, timeout_s=5.0) == [1, 2, 3]
            assert dst.payloads_verified == 0
            assert dst.edge_hashes == {}
            channel.close()

    def test_abort_unblocks_receive_within_a_poll_slice(self):
        import threading

        with CommunicationProxy("dst") as dst:
            abort = threading.Event()
            threading.Timer(0.1, abort.set).start()
            started = time.monotonic()
            with pytest.raises(ProxyAborted):
                dst.receive(("a", "b", 0, 0), timeout_s=30.0, abort=abort)
            assert time.monotonic() - started < 2.0  # not the 30s timeout


class TestFailurePropagation:
    def failing_registry(self):
        registry = TaskRegistry()
        registry.register(TaskSignature(
            name="source", library="boomlib", n_in_ports=0, n_out_ports=1,
            base_comp_size=1.0, fn=lambda inputs, scale: [[1.0, 2.0]],
        ))
        registry.register(TaskSignature(
            name="boom", library="boomlib", n_in_ports=1, n_out_ports=1,
            base_comp_size=1.0,
            fn=lambda inputs, scale: (_ for _ in ()).throw(
                RuntimeError("deliberate task failure")
            ),
        ))
        registry.register(TaskSignature(
            name="sink", library="boomlib", n_in_ports=1, n_out_ports=0,
            base_comp_size=1.0, fn=lambda inputs, scale: [],
        ))
        return registry

    def test_one_failure_aborts_the_run_fast_with_all_errors(self):
        from repro.afg.graph import ApplicationFlowGraph
        from repro.afg.task import TaskNode

        afg = ApplicationFlowGraph("boom-app")
        afg.add_task(TaskNode(id="t0", task_type="boomlib.source",
                              n_out_ports=1))
        afg.add_task(TaskNode(id="t1", task_type="boomlib.boom",
                              n_in_ports=1, n_out_ports=1))
        afg.add_task(TaskNode(id="t2", task_type="boomlib.sink",
                              n_in_ports=1))
        afg.connect("t0", "t1")
        afg.connect("t1", "t2")

        manager = LocalDataManager(
            registry=self.failing_registry(), timeout_s=20.0
        )
        started = time.monotonic()
        with pytest.raises(AggregateExecutionError) as excinfo:
            manager.execute(afg, table_for(afg, ["h0", "h1"]))
        elapsed = time.monotonic() - started
        # t2 was blocked on t1's edge: the abort event freed it within a
        # poll slice, not after the 20s receive timeout
        assert elapsed < 10.0
        # the root cause survives aggregation, not a timeout masking it
        assert any(
            isinstance(e, RuntimeError) and "deliberate" in str(e)
            for e in excinfo.value.errors
        )


class TestRealSimHashParity:
    def test_real_wire_hashes_match_the_simulated_ledger(self):
        """The same application hashed on both paths: every edge's
        content hash on the real wire equals the simulated integrity
        ledger's artifact hash for the producing port — the §16 protocol
        is one protocol, not two."""
        from repro.runtime.integrity import IntegrityPolicy
        from repro.scheduler import SiteScheduler
        from tests.runtime.conftest import build_runtime

        afg = linear_solver_afg(scale=0.15, parallel_lu_nodes=1)

        rt = build_runtime(data_integrity=IntegrityPolicy())
        sim_table = SiteScheduler(k=1).schedule(afg, rt.federation_view())
        rt.sim.run_until_complete(rt.execute_process(afg, sim_table))

        real_table = table_for(afg, ["h0", "h1"])
        manager = LocalDataManager(timeout_s=30.0, verify_hashes=True)
        hosts = sorted({
            h for a in real_table.assignments.values() for h in a.hosts
        })
        proxies = {
            h: CommunicationProxy(h, timeout_s=30.0) for h in hosts
        }
        try:
            manager._execute_with_proxies(afg, real_table, proxies)
            checked = 0
            for edge in afg.edges:
                key = (edge.src, edge.dst, edge.src_port, edge.dst_port)
                dst_host = real_table.get(edge.dst).primary_host
                real_hash = proxies[dst_host].edge_hashes[key]
                sim_hash = rt.integrity.recorded_hash(
                    afg.name, edge.src, edge.src_port
                )
                assert real_hash == sim_hash
                checked += 1
            assert checked == len(afg.edges)
        finally:
            for proxy in proxies.values():
                proxy.close()

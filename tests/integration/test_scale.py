"""Integration tests: large deployments and large applications."""

import pytest

from repro.runtime import VDCERuntime
from repro.scheduler import SiteScheduler
from repro.sim.topology import star_topology
from repro.workloads import RandomDAGConfig, random_dag, wavefront


class TestScale:
    def test_300_task_dag_across_4_sites(self):
        topo = star_topology(seed=1, n_sites=4, hosts_per_site=8)
        rt = VDCERuntime(topo)
        afg = random_dag(RandomDAGConfig(n_tasks=300, width=12, mean_cost=1.0,
                                         cost_heterogeneity=0.5, ccr=0.3,
                                         seed=1))
        table = SiteScheduler(k=3).schedule(afg, rt.federation_view("site-0"))
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, submit_site="site-0",
                               execute_payloads=False)
        )
        assert len(result.records) == 300
        assert all(r.attempts == 1 for r in result.records.values())
        # a pool of 32 hosts must actually be exploited
        assert len(result.hosts_used()) >= 16
        # makespan sanity: far below serial (sum of costs ~ 300)
        serial = sum(t.properties.workload_scale for t in afg)
        assert result.makespan < serial / 4

    def test_16x16_wavefront_completes(self):
        topo = star_topology(seed=2, n_sites=2, hosts_per_site=8)
        rt = VDCERuntime(topo)
        afg = wavefront(n=16, cost=0.5, edge_mb=0.1)  # 256 tasks
        table = SiteScheduler(k=1).schedule(afg, rt.federation_view("site-0"))
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, submit_site="site-0",
                               execute_payloads=False)
        )
        assert len(result.records) == 256
        # the wavefront's critical path is 31 cells of 0.5 base seconds;
        # on the fastest host (speed 2.5) that's a hard lower bound
        assert result.makespan >= (2 * 16 - 1) * 0.5 / 2.5 - 1e-6

    def test_large_run_is_deterministic(self):
        def run():
            topo = star_topology(seed=3, n_sites=3, hosts_per_site=4)
            rt = VDCERuntime(topo)
            afg = random_dag(RandomDAGConfig(n_tasks=120, width=10, seed=3))
            table = SiteScheduler(k=2).schedule(
                afg, rt.federation_view("site-0"))
            result = rt.sim.run_until_complete(
                rt.execute_process(afg, table, submit_site="site-0",
                                   execute_payloads=False)
            )
            return result.makespan, tuple(sorted(result.hosts_used()))

        assert run() == run()

    def test_many_small_apps_back_to_back(self):
        topo = star_topology(seed=4, n_sites=2, hosts_per_site=3)
        rt = VDCERuntime(topo)
        makespans = []
        for i in range(10):
            afg = random_dag(RandomDAGConfig(n_tasks=12, width=4, seed=i))
            afg.name = f"app-{i}"
            table = SiteScheduler(k=1).schedule(
                afg, rt.federation_view("site-0"))
            result = rt.sim.run_until_complete(
                rt.execute_process(afg, table, submit_site="site-0",
                                   execute_payloads=False)
            )
            makespans.append(result.makespan)
        assert len(makespans) == 10
        assert rt.stats.startup_signals == 10
        assert rt.stats.taskperf_updates == 120

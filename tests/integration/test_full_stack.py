"""Integration tests: whole-system scenarios spanning many subsystems."""

import numpy as np
import pytest

from repro import VDCE, DeploymentSpec, HostConfig, SiteConfig
from repro.runtime import AdmissionQueue, RuntimeConfig
from repro.scheduler import SiteScheduler
from repro.sim.workload import OrnsteinUhlenbeckLoad, attach_generators
from repro.workloads import (
    linear_solver_afg,
    surveillance_afg,
)


class TestMonitoringInformsScheduling:
    """The paper's core loop: monitors keep the resource DB fresh, the
    scheduler reads it, placements follow reality."""

    def test_scheduler_reacts_to_monitored_load(self):
        env = VDCE.standard(n_sites=1, hosts_per_site=3, seed=1,
                            runtime_config=RuntimeConfig(monitor_period_s=1.0,
                                                         change_threshold=0.1))
        env.start_monitoring()
        # all hosts are equal; overload two of them (ground truth only)
        hosts = sorted(h.name for h in env.topology.all_hosts)
        env.topology.host(hosts[0]).set_bg_load(9.0)
        env.topology.host(hosts[1]).set_bg_load(9.0)
        # before monitoring runs the DB still believes all idle
        from repro.workloads import bag_of_tasks

        afg = bag_of_tasks(n=3, cost=2.0)
        stale = SiteScheduler(k=0).schedule(afg, env.runtime.federation_view())
        assert set(stale.hosts_used()) == set(hosts)  # spreads blindly
        # after a monitoring round, the loaded hosts are avoided
        env.advance(2.0)
        fresh = SiteScheduler(k=0).schedule(afg, env.runtime.federation_view())
        assert fresh.hosts_used() == [hosts[2]]

    def test_stale_monitoring_hurts_makespan(self):
        """Slower monitoring -> staler DB -> worse placements on average."""

        def run(monitor_period):
            env = VDCE.standard(
                n_sites=1, hosts_per_site=4, seed=3,
                runtime_config=RuntimeConfig(monitor_period_s=monitor_period,
                                             change_threshold=0.0,
                                             # isolate the staleness effect:
                                             # no dynamic rescheduling
                                             load_threshold=1e9),
            )
            attach_generators(
                env.sim, env.topology.all_hosts,
                lambda: OrnsteinUhlenbeckLoad(mean=1.5, theta=0.1, sigma=0.8,
                                              period_s=1.0),
            )
            env.start_monitoring()
            env.advance(30.0)
            from repro.workloads import bag_of_tasks

            makespans = []
            for i in range(5):
                result = env.submit(bag_of_tasks(n=8, cost=3.0, seed=i),
                                    k=0, execute_payloads=False)
                makespans.append(result.makespan)
                env.advance(5.0)
            return sum(makespans) / len(makespans)

        fresh = run(monitor_period=1.0)
        stale = run(monitor_period=500.0)  # effectively never updates
        assert fresh <= stale * 1.05


class TestMultiApplicationWorkflows:
    def test_sequential_submissions_share_one_deployment(self):
        env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=2)
        r1 = env.submit(linear_solver_afg(scale=0.15), k=1)
        r2 = env.submit(surveillance_afg(n_sensors=2, scale=0.3), k=1)
        assert r1.application != r2.application
        (residual,) = r1.outputs["verify"]
        assert residual < 1e-8
        assert env.stats()["startup_signals"] == 2
        # the second application benefits from first-run calibration data
        assert env.repository().task_perf.measurements_recorded > 0

    def test_concurrent_applications_contend_for_hosts(self):
        env = VDCE.standard(n_sites=1, hosts_per_site=2, seed=4)
        from repro.workloads import linear_pipeline

        afg_a = linear_pipeline(n_stages=3, cost=5.0)
        afg_b = linear_pipeline(n_stages=3, cost=5.0)
        afg_b.name = "pipeline-b"
        view = env.runtime.federation_view()
        table_a = SiteScheduler(k=0).schedule(afg_a, view)
        table_b = SiteScheduler(k=0).schedule(afg_b, view)
        proc_a = env.runtime.execute_process(afg_a, table_a,
                                             execute_payloads=False)
        proc_b = env.runtime.execute_process(afg_b, table_b,
                                             execute_payloads=False)
        result_a = env.sim.run_until_complete(proc_a)
        result_b = env.sim.run_until_complete(proc_b)
        # both complete; concurrent execution implies sharing slowed them
        solo_env = VDCE.standard(n_sites=1, hosts_per_site=2, seed=4)
        solo = solo_env.submit(linear_pipeline(n_stages=3, cost=5.0), k=0,
                               execute_payloads=False)
        assert result_a.makespan >= solo.makespan - 1e-9
        assert result_b.makespan >= solo.makespan - 1e-9

    def test_admission_queue_with_editor_accounts(self):
        env = VDCE.standard(n_sites=1, hosts_per_site=2, seed=5)
        env.add_user("vip", "x", priority=9)
        env.add_user("student", "x", priority=1)
        queue = AdmissionQueue(env.runtime, max_concurrent=1)
        from repro.workloads import linear_pipeline

        jobs = []
        for i, user in enumerate(["student", "student", "vip"]):
            afg = linear_pipeline(n_stages=2, cost=2.0)
            afg.name = f"job-{i}-{user}"
            jobs.append(queue.submit(afg, user))

        def waiter():
            for s in jobs:
                yield s

        env.sim.run_until_complete(env.sim.process(waiter()))
        assert queue.admitted_order[0] == "job-2-vip"


class TestHeterogeneousDeployments:
    def test_machine_type_constraints_across_sites(self):
        """Only one site has solaris machines; type-constrained tasks land
        there even when the other site is faster."""
        from repro.sim import HostSpec, Simulator
        from repro.sim.site import GroupSpec, Site, SiteSpec
        from repro.sim.topology import Topology
        from repro.sim.network import Network
        from repro.runtime import VDCERuntime
        from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties

        sim = Simulator(seed=0)
        solaris = Site(sim, SiteSpec(name="sun-site", groups=(
            GroupSpec(name="g", leader="sun1", hosts=(
                HostSpec(name="sun1", speed=1.0, arch="sparc", os="solaris"),
                HostSpec(name="sun2", speed=1.0, arch="sparc", os="solaris"),
            )),
        )))
        linux = Site(sim, SiteSpec(name="linux-site", groups=(
            GroupSpec(name="g", leader="lx1", hosts=(
                HostSpec(name="lx1", speed=8.0, arch="x86", os="linux"),
            )),
        )))
        topo = Topology(sim, [solaris, linux], Network(sim))
        rt = VDCERuntime(topo, default_site="linux-site")

        afg = ApplicationFlowGraph("typed")
        afg.add_task(TaskNode(
            id="anywhere", task_type="generic.source", n_out_ports=1))
        afg.add_task(TaskNode(
            id="sun-only", task_type="generic.compute", n_in_ports=1,
            n_out_ports=1,
            properties=TaskProperties(preferred_machine_type="SUN solaris")))
        afg.connect("anywhere", "sun-only", size_mb=0.01)
        table = SiteScheduler(k=1).schedule(
            afg, rt.federation_view("linux-site"))
        assert table.get("anywhere").hosts == ("lx1",)  # fastest wins
        assert table.get("sun-only").site == "sun-site"

    def test_memory_constrained_task_avoids_small_hosts(self):
        spec = DeploymentSpec(sites=(
            SiteConfig(name="s", hosts=(
                HostConfig("big-slow", speed=1.0, memory_mb=2048),
                HostConfig("small-fast", speed=4.0, memory_mb=64),
            )),
        ))
        env = VDCE(spec=spec)
        from repro.afg import ApplicationFlowGraph, TaskNode, TaskProperties

        afg = ApplicationFlowGraph("hungry")
        afg.add_task(TaskNode(
            id="t", task_type="generic.source", n_out_ports=1,
            properties=TaskProperties(memory_mb=512)))
        table = SiteScheduler(k=0).schedule(afg, env.runtime.federation_view())
        # 4x speed advantage < 4x memory penalty
        assert table.get("t").hosts == ("big-slow",)


class TestDeterminism:
    def test_identical_seeds_produce_identical_runs(self):
        def run(seed):
            env = VDCE.standard(n_sites=2, hosts_per_site=3, seed=seed)
            attach_generators(
                env.sim, env.topology.all_hosts,
                lambda: OrnsteinUhlenbeckLoad(period_s=1.0),
            )
            env.start_monitoring()
            env.advance(5.0)
            result = env.submit(surveillance_afg(n_sensors=2, scale=0.3),
                                k=1)
            return (
                result.makespan,
                {t: r.hosts for t, r in result.records.items()},
                env.stats()["workload_forwards"],
            )

        assert run(42) == run(42)
        assert run(42) != run(43)

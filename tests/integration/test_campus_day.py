"""Integration: a compressed campus-day scenario (all subsystems at once)."""

import pytest

from repro import VDCE, DeploymentSpec, SiteConfig
from repro.repository import AccessDomain
from repro.runtime import AdmissionQueue, RuntimeConfig
from repro.sim import DiurnalLoad, FailureInjector
from repro.sim.workload import attach_generators
from repro.workloads import (
    RandomDAGConfig,
    linear_solver_afg,
    random_dag,
    surveillance_afg,
)

HORIZON_S = 3600.0


def test_compressed_campus_day():
    spec = DeploymentSpec(
        sites=(
            SiteConfig(name="engineering", n_hosts=3, speed=2.0),
            SiteConfig(name="science", n_hosts=3, speed=1.5),
        ),
        seed=7,
    )
    env = VDCE(
        spec=spec,
        runtime_config=RuntimeConfig(
            monitor_period_s=15.0,
            echo_period_s=30.0,
            echo_loss_prob=0.05,
            suspicion_threshold=3,
            load_threshold=4.0,
            check_period_s=15.0,
        ),
    )
    attach_generators(
        env.sim,
        env.topology.all_hosts,
        lambda: DiurnalLoad(base=0.1, amplitude=1.5,
                            day_length_s=2 * HORIZON_S, jitter=0.1,
                            period_s=30.0),
    )
    injector = FailureInjector(env.sim)
    for host in env.topology.all_hosts:
        injector.start_random(host, mtbf_s=HORIZON_S, mttr_s=200.0)
    env.start_monitoring()

    env.add_user("ops", "x", priority=9, access_domain=AccessDomain.GLOBAL)
    env.add_user("grad", "x", priority=2, access_domain=AccessDomain.CAMPUS)
    queue = AdmissionQueue(env.runtime, max_concurrent=2, site="engineering")

    apps = [
        linear_solver_afg(scale=0.15),
        surveillance_afg(n_sensors=2, scale=0.3),
        random_dag(RandomDAGConfig(n_tasks=10, width=3, mean_cost=10.0,
                                   ccr=0.3, seed=3)),
        linear_solver_afg(scale=0.15),
    ]
    for i, afg in enumerate(apps):
        afg.name = f"job-{i}"
    signals = []
    for i, afg in enumerate(apps):
        env.sim.call_at(
            100.0 + 400.0 * i,
            lambda a=afg, u=("ops" if i % 2 else "grad"):
                signals.append(queue.submit(a, u)),
        )

    env.advance(HORIZON_S)

    # every submission resolved (success or a surfaced error), none hung
    assert len(signals) == 4
    assert all(s.triggered for s in signals)
    completed = [s.value for s in signals if not s.failed]
    # at least the two linear solvers should complete despite the chaos
    assert len(completed) >= 2
    for result in completed:
        assert result.makespan > 0
    # the control plane did its jobs
    stats = env.stats()
    assert stats["monitor_reports"] > 0
    assert stats["workload_suppressed"] > 0
    assert stats["echo_packets"] > 0
    if injector.log:
        assert stats["failure_notifications"] >= 0  # detections logged
    # determinism of the whole chaotic scenario
    # (seed-stability is covered elsewhere; here we assert it ran to the end)
    assert env.sim.now == pytest.approx(HORIZON_S)

"""Edge-case tests across packages (paths not covered elsewhere)."""

import pytest

from repro.scheduler import FederationView, SiteScheduler
from repro.runtime import RuntimeConfig

from tests.runtime.conftest import build_runtime, chain_afg
from tests.scheduler.conftest import build_federation


class TestFederationViewValidation:
    def test_local_site_needs_repository(self):
        _, repos, _ = build_federation()
        with pytest.raises(ValueError, match="no repository"):
            FederationView(
                local_site="mars",
                repositories=repos,
                neighbor_order=[],
                site_transfer_time=lambda a, b, mb: 0.0,
            )

    def test_neighbor_needs_repository(self):
        _, repos, _ = build_federation()
        with pytest.raises(ValueError, match="no repository"):
            FederationView(
                local_site="alpha",
                repositories={"alpha": repos["alpha"]},
                neighbor_order=["beta"],
                site_transfer_time=lambda a, b, mb: 0.0,
            )

    def test_local_cannot_be_neighbor(self):
        _, repos, _ = build_federation()
        with pytest.raises(ValueError, match="own neighbor"):
            FederationView(
                local_site="alpha",
                repositories=repos,
                neighbor_order=["alpha"],
                site_transfer_time=lambda a, b, mb: 0.0,
            )

    def test_from_topology_requires_all_repositories(self):
        topo, repos, _ = build_federation()
        with pytest.raises(ValueError, match="without repositories"):
            FederationView.from_topology(
                topo, {"alpha": repos["alpha"]}, "alpha"
            )

    def test_remote_sites_k_validation_and_lookup(self):
        _, _, view = build_federation()
        with pytest.raises(ValueError):
            view.remote_sites(-1)
        assert view.remote_sites(0) == []
        assert view.site_of_host("b-fast") == "beta"
        with pytest.raises(KeyError):
            view.site_of_host("nope")
        with pytest.raises(KeyError):
            view.repository("mars")


class TestRuntimeConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"monitor_period_s": 0.0},
        {"echo_period_s": -1.0},
        {"change_threshold": -0.1},
        {"load_threshold": 0.0},
        {"check_period_s": 0.0},
        {"echo_loss_prob": -0.1},
        {"suspicion_threshold": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = RuntimeConfig()
        assert config.monitor_period_s == 2.0
        assert config.suspicion_threshold == 1


class TestSiteManagerDistribution:
    def test_site_without_tasks_completes_immediately(self):
        rt = build_runtime()
        afg = chain_afg(n=2)
        # force everything onto alpha, then ask beta's manager to distribute
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        signal = rt.site_managers["beta"].distribute_allocation(table, afg)
        rt.sim.run_until_complete(
            rt.sim.process((lambda: (yield signal))())
        )
        assert signal.value == []

    def test_allocation_counts_involved_hosts_only(self):
        rt = build_runtime()
        afg = chain_afg(n=2)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        involved = set(table.hosts_used())
        signal = rt.site_managers["alpha"].distribute_allocation(table, afg)
        rt.sim.run_until_complete(
            rt.sim.process((lambda: (yield signal))())
        )
        assert set(signal.value) == involved


class TestVariadicMerge:
    def test_merge_runs_with_any_fan_in(self):
        from repro.tasklib import default_registry

        sig = default_registry().get("generic.merge")
        assert sig.variadic_inputs
        assert sig.run(["a"], 1.0) == [["a"]]
        assert sig.run(["a", "b", "c"], 1.0) == [["a", "b", "c"]]
        with pytest.raises(ValueError, match="at least"):
            sig.run([], 1.0)

    def test_validate_rejects_below_minimum(self):
        from repro.afg import ApplicationFlowGraph, TaskNode, validate_afg
        from repro.tasklib import default_registry

        afg = ApplicationFlowGraph("m")
        afg.add_task(TaskNode(id="m", task_type="generic.merge",
                              n_in_ports=0, n_out_ports=1))
        problems = validate_afg(afg, registry=default_registry(),
                                collect=True)
        assert any("at least" in p for p in problems)


class TestGanttLanes:
    def test_overlapping_tasks_stack_onto_extra_lanes(self):
        """Two tasks co-resident on one host need two Gantt lanes."""
        from repro.viz import gantt
        from repro.workloads import bag_of_tasks

        rt = build_runtime(site_hosts={"alpha": [("only", 1.0, 256)]})
        afg = bag_of_tasks(n=3, cost=2.0)
        table = SiteScheduler(k=0).schedule(afg, rt.federation_view())
        result = rt.sim.run_until_complete(
            rt.execute_process(afg, table, execute_payloads=False)
        )
        chart = gantt(result)
        # one labelled host line + at least two extra (unlabelled) lanes
        host_lines = [l for l in chart.splitlines() if l.rstrip().endswith("|")]
        assert len(host_lines) >= 3


class TestNetworkOverrides:
    def test_set_lan_after_registration(self):
        from repro.sim import LinkSpec, Simulator
        from repro.sim.network import Network

        sim = Simulator()
        net = Network(sim)
        net.register_host("h1", "s")
        net.register_host("h2", "s")
        before = net.transfer_time_estimate("h1", "h2", 10.0)
        net.set_lan("s", LinkSpec(latency_s=0.0001, bandwidth_mbps=1000.0))
        after = net.transfer_time_estimate("h1", "h2", 10.0)
        assert after < before


class TestRuntimeSubmitOverrides:
    def test_execute_payloads_override_wins_over_config(self):
        rt = build_runtime(config=RuntimeConfig(execute_payloads=True))
        result = rt.submit(chain_afg(n=2), SiteScheduler(k=0),
                           execute_payloads=False)
        assert result.outputs["t1"] == [None]

    def test_schedule_process_default_scheduler(self):
        rt = build_runtime()
        afg = chain_afg(n=2)

        def run():
            out = yield from rt.schedule_process(afg)
            return out

        table, _ = rt.sim.run_until_complete(rt.sim.process(run()))
        assert table.is_complete_for(afg)

    def test_federation_view_for_other_site(self):
        rt = build_runtime()
        view = rt.federation_view("beta")
        assert view.local_site == "beta"
        assert view.remote_sites() == ["alpha"]


class TestTaskNodeHelpers:
    def test_with_properties_returns_new_node(self):
        from repro.afg import TaskNode

        node = TaskNode(id="t", task_type="x", n_out_ports=1)
        updated = node.with_properties(workload_scale=4.0)
        assert updated is not node
        assert updated.properties.workload_scale == 4.0
        assert node.properties.workload_scale == 1.0
        assert str(updated) == "t<x>"


class TestBuilderOutputs:
    def test_outputs_param_is_carried(self):
        from repro.afg import FileSpec
        from repro.editor import AFGBuilder

        b = AFGBuilder("app")
        t = b.add("generic.source",
                  outputs=[FileSpec("/out/result.dat", 0.5)])
        node = b.preview().task(t)
        assert node.properties.outputs[0].path == "/out/result.dat"
